type sum_result = { sum : int; unreachable : int }

let c_sweeps = Bbng_obs.Counter.make "distances.full_sweeps"

let eccentricity_of_row row =
  let ecc = ref 0 and ok = ref true in
  Array.iter
    (fun d -> if d = Bfs.unreachable then ok := false else if d > !ecc then ecc := d)
    row;
  if !ok then Some !ecc else None

let eccentricity g u = eccentricity_of_row (Bfs.distances g u)

let fold_eccentricities g f init =
  Bbng_obs.Counter.bump c_sweeps;
  let n = Undirected.n g in
  let rec go u acc =
    if u >= n then Some acc
    else
      match eccentricity g u with
      | None -> None
      | Some e -> go (u + 1) (f acc u e)
  in
  go 0 init

let diameter g =
  if Undirected.n g = 0 then Some 0
  else fold_eccentricities g (fun acc _ e -> max acc e) 0

let radius g =
  if Undirected.n g = 0 then Some 0
  else fold_eccentricities g (fun acc _ e -> min acc e) max_int

let center g =
  match radius g with
  | None -> []
  | Some r ->
      let acc = ref [] in
      for u = Undirected.n g - 1 downto 0 do
        match eccentricity g u with
        | Some e when e = r -> acc := u :: !acc
        | Some _ | None -> ()
      done;
      !acc

let distance_sum g u =
  let row = Bfs.distances g u in
  let sum = ref 0 and unreachable = ref 0 in
  Array.iter
    (fun d -> if d = Bfs.unreachable then incr unreachable else sum := !sum + d)
    row;
  { sum = !sum; unreachable = !unreachable }

let wiener_index g =
  let n = Undirected.n g in
  let rec go u acc =
    if u >= n then Some acc
    else
      let { sum; unreachable } = distance_sum g u in
      if unreachable > 0 then None else go (u + 1) (acc + sum)
  in
  if n = 0 then Some 0
  else Option.map (fun twice -> twice / 2) (go 0 0)

let all_pairs g =
  Bbng_obs.Counter.bump c_sweeps;
  Bbng_obs.Span.time "distances.all_pairs" (fun () ->
      Array.init (Undirected.n g) (Bfs.distances g))

let diameter_of_matrix m =
  if Array.length m = 0 then Some 0
  else
    Array.fold_left
      (fun acc row ->
        match (acc, eccentricity_of_row row) with
        | Some d, Some e -> Some (max d e)
        | _, _ -> None)
      (Some 0) m

let farthest g u =
  let row = Bfs.distances g u in
  let best_v = ref u and best_d = ref 0 in
  Array.iteri
    (fun v d -> if d <> Bfs.unreachable && d > !best_d then begin best_v := v; best_d := d end)
    row;
  (!best_v, !best_d)
