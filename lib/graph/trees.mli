(** Tree predicates and rooted-tree computations.

    Tree-BG instances (sum of budgets = n-1, Section 3) have tree
    equilibria only; the proofs of Theorems 3.2-3.4 and the Figure 3
    decomposition all reason about rooted subtrees, longest paths, and
    the sizes of the components hanging off a path.  This module
    provides those exact operations on the undirected view. *)

val is_tree : Undirected.t -> bool
(** Connected with exactly [n - 1] edges ([n >= 1]); the empty graph is
    not a tree. *)

val is_forest : Undirected.t -> bool
(** Acyclic (every component a tree). *)

type rooted = {
  root : int;
  parent : int array;  (** [parent.(root) = root]; [-1] off the tree *)
  depth : int array;   (** [-1] off the tree *)
  order : int array;   (** vertices in BFS order from the root *)
}

val root_at : Undirected.t -> int -> rooted
(** Rooted view of the component containing the root (callers normally
    pass a tree, but any graph yields its BFS tree). *)

val subtree_sizes : rooted -> int array
(** [sizes.(v)] = number of vertices in the subtree of [v] (0 for
    vertices outside the rooted component). *)

val children : rooted -> int -> int list
(** Children of a vertex in the rooted view, increasing. *)

val height : rooted -> int
(** Maximum depth. *)

val tree_diameter_path : Undirected.t -> int list
(** A longest path (vertex sequence) of a tree, found by double BFS.
    @raise Invalid_argument if the graph is not a tree. *)

val path_attachment_sizes : Undirected.t -> int list -> int array
(** Figure 3's decomposition: given a path [v_0 ... v_d] in a tree,
    [a.(i)] is the number of vertices whose unique connection to the path
    goes through [v_i] (including [v_i] itself).  The arrays sum to [n]
    when the tree is connected.
    @raise Invalid_argument if the path is not a path of the tree. *)

val leaves : Undirected.t -> int list
(** Degree-1 vertices, increasing. *)

val centers : Undirected.t -> int list
(** The 1 or 2 centers of a tree (iteratively stripping leaves).
    @raise Invalid_argument if the graph is not a tree. *)
