(** Integer max-flow (Dinic's algorithm).

    Substrate for vertex connectivity (Section 7 of the paper, via
    Menger's theorem): local connectivity between two non-adjacent
    vertices equals the max flow in the vertex-split network with unit
    node capacities.  The network type is mutable and single-use-ish:
    [max_flow] consumes capacities but can be called repeatedly to push
    additional flow between the same terminals. *)

type t

val create : int -> t
(** [create n] is an empty flow network on nodes [0 .. n-1]. *)

val node_count : t -> int

val add_edge : t -> src:int -> dst:int -> capacity:int -> unit
(** Adds a directed edge with the given capacity (and its residual
    reverse edge of capacity 0).
    @raise Invalid_argument on out-of-range nodes or negative capacity. *)

val max_flow : t -> source:int -> sink:int -> int
(** Value of a maximum [source -> sink] flow; mutates residual
    capacities.
    @raise Invalid_argument if [source = sink]. *)

val min_cut_side : t -> source:int -> int array
(** After {!max_flow} has saturated the network: characteristic vector of
    the set of nodes still reachable from [source] in the residual graph
    (1 = reachable).  The edges leaving this set form a minimum cut. *)
