open Bbng_core
module Obs = Bbng_obs
module R = Bbng_obs.Replay

type divergence = { at_step : int; reason : string }

let c_replayed = Obs.Counter.make "replay.steps_replayed"
let c_divergences = Obs.Counter.make "replay.divergences"

let diverge at_step fmt =
  Printf.ksprintf
    (fun reason ->
      Obs.Counter.bump c_divergences;
      Error { at_step; reason })
    fmt

let ( let* ) = Result.bind

let targets_to_string a =
  "[" ^ String.concat "," (Array.to_list (Array.map string_of_int a)) ^ "]"

(* Rebuild the game from the recorded header.  The recording is the
   only input: nothing about the original process survives except what
   the dynamics.start event wrote down. *)
let reconstruct (run : R.run) =
  let* budgets =
    match run.R.budgets with
    | Some b -> Ok b
    | None -> diverge 0 "recording has no budgets (dynamics.start missing?)"
  in
  let* version =
    match run.R.version with
    | Some "MAX" -> Ok Cost.Max
    | Some "SUM" -> Ok Cost.Sum
    | Some v -> diverge 0 "recording has unknown version %S" v
    | None -> diverge 0 "recording has no cost version"
  in
  let* start =
    match run.R.start_profile with
    | None -> diverge 0 "recording has no start profile"
    | Some s -> (
        match Strategy.of_string s with
        | p -> Ok p
        | exception Invalid_argument msg ->
            diverge 0 "start profile does not parse: %s" msg)
  in
  let* budget_vec =
    match Budget.of_array budgets with
    | b -> Ok b
    | exception Invalid_argument msg -> diverge 0 "bad budgets: %s" msg
  in
  if not (Budget.to_array (Strategy.budgets start) = budgets) then
    diverge 0 "start profile budgets disagree with recorded budgets"
  else Ok (Game.make version budget_vec, start)

let check_step game profile (s : R.step) ~expected_index =
  let n = Game.n game in
  if s.R.index <> expected_index then
    diverge s.R.index "step index %d, expected %d" s.R.index expected_index
  else if s.R.player < 0 || s.R.player >= n then
    diverge s.R.index "player %d out of range [0,%d)" s.R.player n
  else begin
    let player = s.R.player in
    let old_cost = Game.player_cost game profile player in
    if old_cost <> s.R.old_cost then
      diverge s.R.index "player %d old_cost: recorded %d, replayed %d" player
        s.R.old_cost old_cost
    else begin
      let* () =
        match s.R.old_targets with
        | None -> Ok ()
        | Some recorded ->
            let actual = Strategy.strategy profile player in
            if recorded = actual then Ok ()
            else
              diverge s.R.index
                "player %d old_targets: recorded %s, replayed state has %s"
                player (targets_to_string recorded) (targets_to_string actual)
      in
      let* targets =
        match s.R.new_targets with
        | Some t -> Ok t
        | None ->
            diverge s.R.index
              "step has no new_targets (pre-audit recording?): cannot re-apply"
      in
      let* profile =
        match Strategy.with_strategy profile ~player ~targets with
        | p -> Ok p
        | exception Invalid_argument msg ->
            diverge s.R.index "player %d new_targets rejected: %s" player msg
      in
      let new_cost = Game.player_cost game profile player in
      if new_cost <> s.R.new_cost then
        diverge s.R.index "player %d new_cost: recorded %d, replayed %d" player
          s.R.new_cost new_cost
      else if new_cost >= s.R.old_cost then
        diverge s.R.index "player %d move does not improve (%d -> %d)" player
          s.R.old_cost new_cost
      else
        let social = Game.social_cost game profile in
        if social <> s.R.social_cost then
          diverge s.R.index "social_cost after step: recorded %d, replayed %d"
            s.R.social_cost social
        else begin
          Obs.Counter.bump c_replayed;
          Ok profile
        end
    end
  end

let check_outcome game ~seen ~total profile (o : R.outcome) ~check_stable
    ~rule_name:rname =
  let* () =
    if o.R.total_steps <> total then
      diverge total "outcome records %d steps, replay applied %d"
        o.R.total_steps total
    else Ok ()
  in
  let* () =
    match o.R.final_profile with
    | None -> Ok ()
    | Some s ->
        if s = Strategy.to_string profile then Ok ()
        else
          diverge total "final profile: recorded %S, replayed %S" s
            (Strategy.to_string profile)
  in
  let* () =
    match o.R.final_social_cost with
    | None -> Ok ()
    | Some c ->
        let actual = Game.social_cost game profile in
        if c = actual then Ok ()
        else diverge total "final social_cost: recorded %d, replayed %d" c actual
  in
  match o.R.outcome with
  | "cycle" -> (
      let* period =
        match o.R.period with
        | Some p when p >= 1 -> Ok p
        | Some p -> diverge total "cycle with nonsensical period %d" p
        | None -> diverge total "cycle outcome without a period"
      in
      (* [seen] holds first occurrences; the final profile itself was
         entered at step [total], so a genuine recurrence means its
         first occurrence is strictly earlier *)
      match Hashtbl.find_opt seen (Strategy.to_string profile) with
      | Some earlier when earlier < total && total - earlier = period -> Ok ()
      | Some earlier when earlier < total ->
          diverge total
            "cycle period: recorded %d, but profile previously occurred at \
             step %d (distance %d)"
            period earlier (total - earlier)
      | _ ->
          diverge total
            "outcome says cycle (period %d) but the final profile never \
             occurred earlier in the replay"
            period)
  | "converged" -> (
      if not check_stable then Ok ()
      else
        match Option.bind rname Dynamics.rule_of_name with
        | None ->
            (* no rule recorded: stability is unverifiable, accept the
               structural checks above *)
            Ok ()
        | Some rule ->
            if Dynamics.stable game rule profile then Ok ()
            else
              diverge total
                "outcome says converged but a player still has an improving \
                 move under rule %s"
                (Option.get rname))
  | "step-limit" ->
      (* structural checks above suffice: the limit itself is recorder
         configuration (max_steps in the header is provenance, not a
         replayable invariant) *)
      Ok ()
  | "interrupted" ->
      (* a deadline/work-budget expiry: like step-limit, the cut point
         is runtime circumstance, not a property of the trajectory —
         the structural checks above are the whole claim *)
      Ok ()
  | other -> diverge total "unknown outcome %S" other

(* Verified-prefix reconstruction for resumption: same checks as
   [check_run] on every recorded step, but no outcome requirement — an
   interrupted or even torn recording is exactly the input this is
   for.  The caller gets back the state a continued run should start
   from. *)
let resume_state (run : R.run) =
  Obs.Span.with_ "replay.resume_state" (fun () ->
      let* game, start = reconstruct run in
      let rec apply profile count = function
        | [] -> Ok (profile, count)
        | s :: rest ->
            let* profile =
              check_step game profile s ~expected_index:(count + 1)
            in
            apply profile (count + 1) rest
      in
      let* profile, total = apply start 0 run.R.steps in
      Ok (game, profile, total))

let check_run ?(check_stable = true) (run : R.run) =
  Obs.Span.with_ "replay.check_run" (fun () ->
      let* game, start = reconstruct run in
      (* First-occurrence history, exactly like the recorder's cycle
         detector: needed to independently confirm a recorded Cycle's
         period. *)
      let seen : (string, int) Hashtbl.t = Hashtbl.create 256 in
      Hashtbl.replace seen (Strategy.to_string start) 0;
      let rec apply profile count = function
        | [] -> Ok (profile, count)
        | s :: rest ->
            let* profile =
              check_step game profile s ~expected_index:(count + 1)
            in
            let key = Strategy.to_string profile in
            if not (Hashtbl.mem seen key) then
              Hashtbl.replace seen key (count + 1);
            apply profile (count + 1) rest
      in
      let* profile, total = apply start 0 run.R.steps in
      match run.R.run_outcome with
      | None ->
          Ok
            (Printf.sprintf
               "replayed %d step%s (recording interrupted before an outcome)"
               total
               (if total = 1 then "" else "s"))
      | Some o ->
          let* () =
            check_outcome game ~seen ~total profile o ~check_stable
              ~rule_name:run.R.rule
          in
          Ok
            (Printf.sprintf "replayed %d step%s, outcome %s verified" total
               (if total = 1 then "" else "s")
               o.R.outcome))
