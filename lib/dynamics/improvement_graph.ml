open Bbng_core

type move_kind = Any_improvement | Best_only

type t = {
  profiles : Strategy.t array;
  arcs : (int * int) list;
  sinks : int list;
  has_cycle : bool;
  cycle_witness : int list option;
  longest_path_lower_bound : int;
}

(* Enumerate a player's strict improvements from [profile]; under
   Best_only, only the moves reaching the exact best-response cost. *)
let improving_successors kind game profile player =
  let n = Game.n game in
  let budget = Budget.get (Game.budgets game) player in
  let eval_ctx = Deviation_eval.make (Game.version game) profile ~player in
  let current = Deviation_eval.current_cost eval_ctx in
  let candidates = ref [] in
  Bbng_graph.Combinatorics.iter_combinations ~n:(n - 1) ~k:budget (fun c ->
      let targets = Array.map (fun i -> if i < player then i else i + 1) c in
      let cost = Deviation_eval.cost eval_ctx targets in
      if cost < current then candidates := (Array.copy targets, cost) :: !candidates);
  let chosen =
    match kind with
    | Any_improvement -> !candidates
    | Best_only ->
        let best =
          List.fold_left (fun acc (_, c) -> min acc c) max_int !candidates
        in
        List.filter (fun (_, c) -> c = best) !candidates
  in
  List.map
    (fun (targets, _) -> Strategy.with_strategy profile ~player ~targets)
    chosen

(* DFS cycle detection + longest path on the DAG (memoized). *)
let analyze_arcs node_count arcs =
  let succ = Array.make node_count [] in
  List.iter (fun (a, b) -> succ.(a) <- b :: succ.(a)) arcs;
  (* colors: 0 white, 1 on stack, 2 done *)
  let color = Array.make node_count 0 in
  let parent = Array.make node_count (-1) in
  let cycle = ref None in
  let rec dfs u =
    color.(u) <- 1;
    List.iter
      (fun v ->
        if !cycle = None then
          if color.(v) = 0 then begin
            parent.(v) <- u;
            dfs v
          end
          else if color.(v) = 1 then begin
            (* back edge u -> v: walk parents from u back to v *)
            let rec collect acc x = if x = v then v :: acc else collect (x :: acc) parent.(x) in
            cycle := Some (collect [] u)
          end)
      succ.(u);
    if color.(u) = 1 then color.(u) <- 2
  in
  for u = 0 to node_count - 1 do
    if color.(u) = 0 && !cycle = None then dfs u
  done;
  let longest =
    match !cycle with
    | Some _ -> -1
    | None ->
        let memo = Array.make node_count (-1) in
        let rec depth u =
          if memo.(u) >= 0 then memo.(u)
          else begin
            let d =
              List.fold_left (fun acc v -> max acc (1 + depth v)) 0 succ.(u)
            in
            memo.(u) <- d;
            d
          end
        in
        let best = ref 0 in
        for u = 0 to node_count - 1 do
          best := max !best (depth u)
        done;
        !best
  in
  (!cycle, longest, succ)

let build ?(kind = Any_improvement) game =
  let budgets = Game.budgets game in
  let profiles = ref [] in
  Equilibrium.iter_profiles budgets (fun p -> profiles := p :: !profiles);
  let profiles = Array.of_list (List.rev !profiles) in
  let index = Hashtbl.create (Array.length profiles) in
  Array.iteri (fun i p -> Hashtbl.replace index (Strategy.to_string p) i) profiles;
  let arcs = ref [] in
  Array.iteri
    (fun i p ->
      for player = 0 to Game.n game - 1 do
        List.iter
          (fun q ->
            match Hashtbl.find_opt index (Strategy.to_string q) with
            | Some j -> arcs := (i, j) :: !arcs
            | None -> assert false)
          (improving_successors kind game p player)
      done)
    profiles;
  let arcs = List.rev !arcs in
  let cycle, longest, succ = analyze_arcs (Array.length profiles) arcs in
  let sinks = ref [] in
  for i = Array.length profiles - 1 downto 0 do
    if succ.(i) = [] then sinks := i :: !sinks
  done;
  {
    profiles;
    arcs;
    sinks = !sinks;
    has_cycle = cycle <> None;
    cycle_witness = cycle;
    longest_path_lower_bound = longest;
  }

let sinks_are_nash game t =
  let sink_set = Hashtbl.create 64 in
  List.iter (fun i -> Hashtbl.replace sink_set i ()) t.sinks;
  let ok = ref true in
  Array.iteri
    (fun i p ->
      let is_sink = Hashtbl.mem sink_set i in
      if is_sink <> Equilibrium.is_nash game p then ok := false)
    t.profiles;
  !ok

let fip_holds ?kind game = not (build ?kind game).has_cycle

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph improvement {\n  rankdir=LR;\n";
  let sink_set = Hashtbl.create 64 in
  List.iter (fun i -> Hashtbl.replace sink_set i ()) t.sinks;
  Array.iteri
    (fun i p ->
      let shape = if Hashtbl.mem sink_set i then "doublecircle" else "ellipse" in
      Buffer.add_string buf
        (Printf.sprintf "  %d [label=\"%s\", shape=%s];\n" i
           (Strategy.to_string p) shape))
    t.profiles;
  List.iter
    (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "  %d -> %d;\n" a b))
    t.arcs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let potential t =
  if t.has_cycle then None
  else begin
    let n = Array.length t.profiles in
    let succ = Array.make n [] in
    List.iter (fun (a, b) -> succ.(a) <- b :: succ.(a)) t.arcs;
    let memo = Array.make n (-1) in
    let rec depth u =
      if memo.(u) >= 0 then memo.(u)
      else begin
        let d = List.fold_left (fun acc v -> max acc (1 + depth v)) 0 succ.(u) in
        memo.(u) <- d;
        d
      end
    in
    Some (Array.init n depth)
  end
