type t = Round_robin | Random_order of int | Max_gain

let name = function
  | Round_robin -> "round-robin"
  | Random_order seed -> Printf.sprintf "random-order(seed=%d)" seed
  | Max_gain -> "max-gain"

type state = {
  kind : t;
  n : int;
  position : int;        (* next slot in the current order *)
  order : int array;     (* current round's activation order *)
  rng : Random.State.t option;
}

let fresh_order st =
  match st.rng with
  | None -> Array.init st.n Fun.id
  | Some rng ->
      let a = Array.init st.n Fun.id in
      for i = st.n - 1 downto 1 do
        let j = Random.State.int rng (i + 1) in
        let tmp = a.(i) in
        a.(i) <- a.(j);
        a.(j) <- tmp
      done;
      a

let start kind ~n =
  let rng =
    match kind with
    | Random_order seed -> Some (Random.State.make [| seed |])
    | Round_robin | Max_gain -> None
  in
  let st = { kind; n; position = 0; order = [||]; rng } in
  { st with order = fresh_order st }

let next_player st ~improving =
  match st.kind with
  | Max_gain ->
      let best = ref None in
      for p = 0 to st.n - 1 do
        match improving p with
        | Some gain -> (
            match !best with
            | Some (_, g) when g >= gain -> ()
            | Some _ | None -> best := Some (p, gain))
        | None -> ()
      done;
      Option.map (fun (p, _) -> (p, st)) !best
  | Round_robin | Random_order _ ->
      (* Scan at most n players starting from the schedule position,
         re-drawing the order at each round boundary. *)
      let rec scan st tried =
        if tried >= st.n then None
        else begin
          let st =
            if st.position >= st.n then { st with position = 0; order = fresh_order st }
            else st
          in
          let p = st.order.(st.position) in
          let st = { st with position = st.position + 1 } in
          match improving p with
          | Some _ -> Some (p, st)
          | None -> scan st (tried + 1)
        end
      in
      scan st 0
