(** Deterministic replay of recorded dynamics runs.

    A [--report] JSONL stream records every applied move in full
    (player, old arcs, new arcs — see {!Dynamics.run}).  This module is
    the checking half of that flight recorder: given the typed view
    from {!Bbng_obs.Replay}, it rebuilds the game from the recorded
    header (cost version + budgets + start profile), re-applies every
    recorded move, and verifies each recorded number against the
    replayed state — [old_cost], [new_cost], the post-move
    [social_cost], strict improvement, and finally the recorded outcome
    (final profile, converged-means-stable, a cycle's period against an
    independently rebuilt occurrence history).

    The replay never re-runs the best-response {e search}: it only
    re-prices the recorded moves.  That is what makes it a check — a
    bug in the search that recorded a non-improving or mispriced move
    is exactly what replay catches, and a recording from one machine
    replays bit-identically on another. *)

type divergence = {
  at_step : int;  (** 1-based step where replay and recording part ways;
                      0 for header-level problems *)
  reason : string;
}

val check_run :
  ?check_stable:bool -> Bbng_obs.Replay.run -> (string, divergence) result
(** Replay one recorded run.  [Ok summary] means every recorded step
    re-applied with identical costs and the outcome verified; the
    summary is a short human-readable line ("replayed 17 steps, outcome
    converged verified").  A recording interrupted before its outcome
    (a valid prefix) replays its steps and reports the truncation in
    the summary rather than failing.

    [check_stable] (default [true]) additionally re-verifies a
    [converged] outcome by confirming no player has an improving move
    under the recorded rule — the expensive part; disable it for huge
    exact-rule instances. *)

val resume_state :
  Bbng_obs.Replay.run ->
  (Bbng_core.Game.t * Bbng_core.Strategy.t * int, divergence) result
(** Rebuild the state a continued run should start from: reconstruct
    the game from the recorded header and re-apply (with full
    per-step verification, as in {!check_run}) every recorded step.
    [Ok (game, profile, steps)] is the last consistent state of the
    recording; no outcome event is required, so an [interrupted] run, a
    crash-truncated [.partial] report, or a SIGKILL-torn prefix all
    resume cleanly — this is what [bbng_cli dynamics --resume] builds
    on.  A step that fails verification returns the divergence instead:
    a corrupt recording is refused, not silently continued. *)
