open Bbng_core
(** The improvement graph of a small instance: exact data for the
    Section 8 convergence question.

    Vertices are {e all} strategy profiles of the instance; there is an
    arc [p -> q] whenever [q] differs from [p] in exactly one player's
    strategy and that player strictly decreases its cost by the switch.
    Classical facts this makes checkable:

    - the game has the {e finite improvement property} (every improving
      path is finite, i.e. better-response dynamics always converge)
      iff the improvement graph is acyclic;
    - restricting arcs to {e best}-response moves gives the weaker
      finite best-response property (FBRP);
    - sinks of the graph are exactly the Nash equilibria.

    The paper proves equilibria exist but leaves convergence open,
    noting that Laoutaris et al. exhibit a loop in the directed variant.
    Building the full graph is exponential ([prod C(n-1,b_i)] nodes), so
    this is a small-instance instrument — which is precisely how one
    hunts for a counterexample loop or grows confidence none exists. *)

type move_kind =
  | Any_improvement   (** all strictly improving unilateral deviations *)
  | Best_only         (** only deviations to exact best responses *)

type t = {
  profiles : Strategy.t array;         (** node id -> profile *)
  arcs : (int * int) list;             (** improving moves (from, to) *)
  sinks : int list;                    (** node ids with no outgoing arc *)
  has_cycle : bool;                    (** any directed cycle? *)
  cycle_witness : int list option;     (** a directed cycle (node ids,
                                           in order) when one exists *)
  longest_path_lower_bound : int;      (** longest path in the DAG case:
                                           worst-case convergence time;
                                           -1 when cyclic *)
}

val build : ?kind:move_kind -> Game.t -> t
(** Exhaustive construction.  Guard with {!Equilibrium.count_profiles}
    first; intended for a few thousand profiles.  [kind] defaults to
    [Any_improvement]. *)

val sinks_are_nash : Game.t -> t -> bool
(** Sanity: every sink certifies as a Nash equilibrium and vice versa.
    Used by the tests. *)

val fip_holds : ?kind:move_kind -> Game.t -> bool
(** [not (build g).has_cycle]: better-response (or best-response)
    dynamics converge from {e every} start under {e every} schedule. *)

val to_dot : t -> string
(** Graphviz rendering of the improvement graph: profiles as nodes
    (labelled by their serialization and diameter), improving moves as
    arcs, sinks (Nash equilibria) double-circled.  Only sensible for a
    few hundred profiles. *)

val potential : t -> int array option
(** An {e ordinal potential} extracted from an acyclic improvement
    graph: [phi.(i)] = length of the longest improving path starting at
    profile [i], so every improving move strictly decreases [phi].
    [None] when the graph has a cycle (no ordinal potential exists).
    This is the generalized-ordinal-potential characterization of the
    finite improvement property (Monderer-Shapley), computed rather
    than conjectured. *)
