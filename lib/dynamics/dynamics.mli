open Bbng_core
(** Iterated response dynamics.

    From an initial profile, repeatedly activate a player (per a
    {!Schedule.t}) and apply its move (per a {!type-rule}), until no
    player can improve (the profile is then a Nash equilibrium for
    [Exact_best] moves, a swap equilibrium for swap moves), a previously
    visited profile recurs (a best-response cycle — the phenomenon
    Laoutaris et al. exhibited in the directed variant, left open for
    this game by Section 8), or a step bound is hit. *)

type rule =
  | Exact_best       (** move to an exact best response *)
  | First_improving  (** first strictly improving strategy found *)
  | Best_swap        (** best single-arc swap *)
  | First_swap       (** first improving single-arc swap *)

val rule_name : rule -> string

val rule_of_name : string -> rule option
(** Inverse of {!rule_name} (used by the replay checker to re-derive
    the move rule from a recording). *)

type outcome =
  | Converged of {
      profile : Strategy.t;
      steps : int;        (** number of strategy changes applied *)
    }
  | Cycle of {
      profile : Strategy.t;  (** first repeated profile *)
      steps : int;           (** step index at which it recurred *)
      period : int;          (** distance since its previous occurrence *)
    }
  | Step_limit of { profile : Strategy.t; steps : int }
  | Interrupted of {
      profile : Strategy.t;  (** last consistent profile; the step whose
                                 search tripped was {e not} applied *)
      steps : int;
    }
      (** the run's cancellation token (deadline / work limit /
          explicit cancel) expired; the recording still closes with a
          [dynamics.outcome] event and remains replayable *)

val outcome_name : outcome -> string
(** ["converged"], ["cycle"], ["step-limit"], ["interrupted"]. *)

val final_profile : outcome -> Strategy.t
val steps : outcome -> int

type trace_entry = {
  step : int;
  player : int;
  old_cost : int;
  new_cost : int;
  social_cost : int;        (** diameter after the move *)
  old_targets : int array;  (** the player's arcs before the move *)
  new_targets : int array;  (** the arcs applied *)
}

val run :
  ?max_steps:int ->
  ?detect_cycles:bool ->
  ?meta:(string * Bbng_obs.Json.t) list ->
  ?on_step:(trace_entry -> unit) ->
  ?budget:Bbng_obs.Budgeted.t ->
  Game.t -> schedule:Schedule.t -> rule:rule -> Strategy.t -> outcome
(** [run game ~schedule ~rule start] iterates until one of the outcomes
    above.  Defaults: [max_steps = 10_000], [detect_cycles = true]
    (profiles are hashed; memory grows with the trajectory length).
    Cycle detection compares full profiles, so a reported [Cycle] is a
    genuine best-response loop, not a hash collision.

    [?budget] (default unlimited) makes the whole run cancellable: the
    token is threaded into every best-response search and checked
    between steps, and expiry yields the typed [Interrupted] outcome
    (never an exception) with the last consistent profile — every step
    already emitted stays valid, so the recording is a replayable
    prefix that [bbng_cli dynamics --resume] can continue from.

    Observability / flight recording: when a {!Bbng_obs.Sink} is
    active, every applied move is emitted as a [dynamics.step] event
    (same payload as {!type-trace_entry}, including the full move),
    bracketed by a [dynamics.start] event carrying everything needed to
    reconstruct the game (version, budgets, start profile, rule,
    schedule, [max_steps], plus the caller's [?meta] fields — seed and
    friends) and a final [dynamics.outcome] event carrying the final
    profile.  The resulting [--report] JSONL is a complete flight
    recording that {!Replay.check_run} (and [bbng_cli replay]) can
    re-apply and verify move by move.

    Convergence diagnostics: every applied step updates the
    [dynamics.social_cost] gauge and the [dynamics.max_regret] gauge
    (max regret among the players probed by the schedule this step —
    an exact 0 the moment the run converges), and feeds a windowed
    plateau/oscillation detector.  Each window of applied steps emits
    a typed [dynamics.diagnosis] event — [converging] (net social
    cost fell), [stalled] (perfectly flat window), or
    [cycling-suspected] (cost rose, or rose-and-returned, the
    signature a best-response cycle leaves) — records the window's
    mean improvement relative to the first window in the
    [dynamics.improvement_decay_pct] histogram, and annotates the
    heartbeat task so [bbng_cli top] shows the verdict live.  A final
    diagnosis event ([final: true]) is aligned with the typed outcome,
    and the run's ledger row stores [dynamics.final_social_cost],
    [dynamics.steps], [dynamics.max_regret] and [dynamics.diagnosis]
    as queryable metrics (see {!Bbng_obs.Ledger}). *)

val stable : Game.t -> rule -> Strategy.t -> bool
(** No player has a move under the rule: post-condition of
    [Converged]. *)
