(** Player activation schedules for response dynamics.

    The paper (Section 8) leaves convergence of best-response dynamics
    open and notes Laoutaris et al. exhibit a loop in their directed
    variant; the dynamics engine therefore supports several activation
    orders so the experiments can probe convergence under each. *)

type t =
  | Round_robin
      (** players 0, 1, ..., n-1, repeating *)
  | Random_order of int
      (** a fresh uniform permutation each round, seeded *)
  | Max_gain
      (** the player with the largest available cost improvement moves
          (expensive: evaluates every player's move each step) *)

val name : t -> string

type state
(** Iteration state (permutation position, RNG). *)

val start : t -> n:int -> state

val next_player :
  state -> improving:(int -> int option) -> (int * state) option
(** [next_player st ~improving] picks the next player to activate.
    [improving p] must report the cost {e gain} of player [p]'s chosen
    move ([None] if [p] has no improving move).  Returns [None] when no
    player can improve (= the profile is stable for this move rule).
    For [Round_robin]/[Random_order] the scan starts at the schedule
    position and wraps; for [Max_gain] every player is probed. *)
