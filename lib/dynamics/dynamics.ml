open Bbng_core
module Obs = Bbng_obs

type rule = Exact_best | First_improving | Best_swap | First_swap

let rule_name = function
  | Exact_best -> "exact-best"
  | First_improving -> "first-improving"
  | Best_swap -> "best-swap"
  | First_swap -> "first-swap"

let rule_of_name = function
  | "exact-best" -> Some Exact_best
  | "first-improving" -> Some First_improving
  | "best-swap" -> Some Best_swap
  | "first-swap" -> Some First_swap
  | _ -> None

let mover ?budget rule game profile player =
  (* one span per best-response probe: its p50/p99 is the per-player
     move-selection latency distribution of the whole dynamics run *)
  Obs.Span.with_ "dynamics.select_move" (fun () ->
      match rule with
      | Exact_best | First_improving ->
          (* Both rules apply an exact improving move; Exact_best prefers
             the best one. *)
          if rule = Exact_best then
            Best_response.best_improvement ?budget game profile player
          else Best_response.exact_improvement ?budget game profile player
      | Best_swap -> Best_response.swap_best ?budget game profile player
      | First_swap ->
          Best_response.first_improving_swap ?budget game profile player)

type outcome =
  | Converged of { profile : Strategy.t; steps : int }
  | Cycle of { profile : Strategy.t; steps : int; period : int }
  | Step_limit of { profile : Strategy.t; steps : int }
  | Interrupted of { profile : Strategy.t; steps : int }

let outcome_name = function
  | Converged _ -> "converged"
  | Cycle _ -> "cycle"
  | Step_limit _ -> "step-limit"
  | Interrupted _ -> "interrupted"

let final_profile = function
  | Converged { profile; _ }
  | Cycle { profile; _ }
  | Step_limit { profile; _ }
  | Interrupted { profile; _ } ->
      profile

let steps = function
  | Converged { steps; _ }
  | Cycle { steps; _ }
  | Step_limit { steps; _ }
  | Interrupted { steps; _ } ->
      steps

type trace_entry = {
  step : int;
  player : int;
  old_cost : int;
  new_cost : int;
  social_cost : int;
  old_targets : int array;
  new_targets : int array;
}

module Profile_key = struct
  type t = string
  let of_profile p = Strategy.to_string p
end

let c_steps = Obs.Counter.make "dynamics.steps_applied"
let c_runs = Obs.Counter.make "dynamics.runs"
let h_improvement = Obs.Histogram.make "dynamics.step_improvement"

let json_targets a =
  Obs.Json.List (Array.to_list (Array.map (fun t -> Obs.Json.Int t) a))

let emit_entry e =
  Obs.Sink.emit "dynamics.step"
    [
      ("step", Obs.Json.Int e.step);
      ("player", Obs.Json.Int e.player);
      ("old_cost", Obs.Json.Int e.old_cost);
      ("new_cost", Obs.Json.Int e.new_cost);
      ("social_cost", Obs.Json.Int e.social_cost);
      ("old_targets", json_targets e.old_targets);
      ("new_targets", json_targets e.new_targets);
    ]

(* The final event names the rule, the outcome and the final profile so
   a run's JSONL is a self-contained flight recording: [Replay.check]
   can re-apply it without any context beyond the file.  The sink treats
   "dynamics.outcome" as a flush milestone, so even a buffered report is
   a valid JSONL prefix the moment the run closes. *)
let emit_outcome game ~schedule ~meta rule outcome =
  Obs.Sink.emit "dynamics.outcome"
    (List.concat
       [
         [
           ("rule", Obs.Json.Str (rule_name rule));
           ("schedule", Obs.Json.Str (Schedule.name schedule));
           ("outcome", Obs.Json.Str (outcome_name outcome));
           ("steps", Obs.Json.Int (steps outcome));
           ( "social_cost",
             Obs.Json.Int (Game.social_cost game (final_profile outcome)) );
           ("profile", Obs.Json.Str (Strategy.to_string (final_profile outcome)));
         ];
         (match outcome with
         | Cycle { period; _ } -> [ ("period", Obs.Json.Int period) ]
         | Converged _ | Step_limit _ | Interrupted _ -> []);
         meta;
       ])

let run ?(max_steps = 10_000) ?(detect_cycles = true) ?(meta = []) ?on_step
    ?(budget = Obs.Budgeted.unlimited) game ~schedule ~rule start =
  let n = Game.n game in
  Obs.Counter.bump c_runs;
  if Obs.Sink.active () then
    Obs.Sink.emit "dynamics.start"
      ([
         ("rule", Obs.Json.Str (rule_name rule));
         ("schedule", Obs.Json.Str (Schedule.name schedule));
         ( "version",
           Obs.Json.Str (Cost.version_name (Game.version game)) );
         ( "budgets",
           Obs.Json.List
             (Array.to_list
                (Array.map
                   (fun b -> Obs.Json.Int b)
                   (Budget.to_array (Game.budgets game)))) );
         ("profile", Obs.Json.Str (Strategy.to_string start));
         ("players", Obs.Json.Int n);
         ("max_steps", Obs.Json.Int max_steps);
         ("social_cost", Obs.Json.Int (Game.social_cost game start));
       ]
      @ meta);
  (* heartbeat task: one unit per applied step, bounded by max_steps,
     carrying the run's budget headroom into each beat *)
  let progress = Obs.Progress.start ~total:max_steps ~budget "dynamics" in
  let seen : (Profile_key.t, int) Hashtbl.t = Hashtbl.create 256 in
  let remember step profile =
    if detect_cycles then begin
      let key = Profile_key.of_profile profile in
      match Hashtbl.find_opt seen key with
      | Some earlier -> Some (step - earlier)
      | None ->
          Hashtbl.add seen key step;
          None
    end
    else None
  in
  ignore (remember 0 start);
  let finish outcome =
    Obs.Progress.finish progress;
    emit_outcome game ~schedule ~meta rule outcome;
    outcome
  in
  let rec loop sched_state profile step =
    if step >= max_steps then finish (Step_limit { profile; steps = step })
    else if Obs.Budgeted.expired budget then
      (* checked between steps as well as inside the move search, so a
         token cancelled from outside stops the run even when every
         individual move is cheap *)
      finish (Interrupted { profile; steps = step })
    else begin
      (* The schedule probes players through this memoized move lookup,
         so Max_gain's n probes and the final application share work. *)
      let cache : (int, Best_response.move option) Hashtbl.t = Hashtbl.create 8 in
      let move_of p =
        match Hashtbl.find_opt cache p with
        | Some m -> m
        | None ->
            let m = mover ~budget rule game profile p in
            Hashtbl.add cache p m;
            m
      in
      let improving p =
        match move_of p with
        | None -> None
        | Some m -> Some (Game.player_cost game profile p - m.Best_response.cost)
      in
      (* the probe is where the budgeted best-response search runs; an
         expiry mid-probe lands here, is converted to the typed outcome
         (the step was not applied, so [profile]/[step] are the last
         consistent state), and the recording still closes with a
         [dynamics.outcome] event — the report stays replayable *)
      let probed =
        try `Next (Schedule.next_player sched_state ~improving)
        with Obs.Budgeted.Expired -> `Expired
      in
      match probed with
      | `Expired -> finish (Interrupted { profile; steps = step })
      | `Next None -> finish (Converged { profile; steps = step })
      | `Next (Some (player, sched_state)) -> (
          match move_of player with
          | None -> assert false (* the schedule only returns improvers *)
          | Some m ->
              let old_cost = Game.player_cost game profile player in
              let old_targets = Strategy.strategy profile player in
              let profile =
                Strategy.with_strategy profile ~player ~targets:m.Best_response.targets
              in
              let step = step + 1 in
              Obs.Counter.bump c_steps;
              Obs.Progress.step progress;
              if Obs.Span.enabled () then
                Obs.Histogram.record h_improvement
                  (old_cost - m.Best_response.cost);
              if Option.is_some on_step || Obs.Sink.active () then begin
                let entry =
                  {
                    step;
                    player;
                    old_cost;
                    new_cost = m.Best_response.cost;
                    social_cost = Game.social_cost game profile;
                    old_targets;
                    new_targets = m.Best_response.targets;
                  }
                in
                (match on_step with Some f -> f entry | None -> ());
                emit_entry entry
              end;
              (match remember step profile with
              | Some period -> finish (Cycle { profile; steps = step; period })
              | None -> loop sched_state profile step))
    end
  in
  (* [finish] already closed the task on every typed outcome; the
     protect covers raise paths (idempotent, so no double beat).  The
     outer span makes every per-step span (dynamics.select_move and
     below) a child path in the profile: "dynamics.run;..." *)
  Obs.Span.time "dynamics.run" @@ fun () ->
  Fun.protect
    ~finally:(fun () -> Obs.Progress.finish progress)
    (fun () -> loop (Schedule.start schedule ~n) start 0)

let stable game rule profile =
  let n = Game.n game in
  let rec check p =
    p >= n || (mover rule game profile p = None && check (p + 1))
  in
  check 0
