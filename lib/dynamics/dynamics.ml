open Bbng_core

type rule = Exact_best | First_improving | Best_swap | First_swap

let rule_name = function
  | Exact_best -> "exact-best"
  | First_improving -> "first-improving"
  | Best_swap -> "best-swap"
  | First_swap -> "first-swap"

let mover rule game profile player =
  match rule with
  | Exact_best | First_improving ->
      (* Both rules apply an exact improving move; Exact_best prefers
         the best one. *)
      if rule = Exact_best then Best_response.best_improvement game profile player
      else Best_response.exact_improvement game profile player
  | Best_swap -> Best_response.swap_best game profile player
  | First_swap -> Best_response.first_improving_swap game profile player

type outcome =
  | Converged of { profile : Strategy.t; steps : int }
  | Cycle of { profile : Strategy.t; steps : int; period : int }
  | Step_limit of { profile : Strategy.t; steps : int }

let outcome_name = function
  | Converged _ -> "converged"
  | Cycle _ -> "cycle"
  | Step_limit _ -> "step-limit"

let final_profile = function
  | Converged { profile; _ } | Cycle { profile; _ } | Step_limit { profile; _ } ->
      profile

let steps = function
  | Converged { steps; _ } | Cycle { steps; _ } | Step_limit { steps; _ } -> steps

type trace_entry = {
  step : int;
  player : int;
  old_cost : int;
  new_cost : int;
  social_cost : int;
}

module Profile_key = struct
  type t = string
  let of_profile p = Strategy.to_string p
end

let run ?(max_steps = 10_000) ?(detect_cycles = true) ?on_step game ~schedule
    ~rule start =
  let n = Game.n game in
  let seen : (Profile_key.t, int) Hashtbl.t = Hashtbl.create 256 in
  let remember step profile =
    if detect_cycles then begin
      let key = Profile_key.of_profile profile in
      match Hashtbl.find_opt seen key with
      | Some earlier -> Some (step - earlier)
      | None ->
          Hashtbl.add seen key step;
          None
    end
    else None
  in
  ignore (remember 0 start);
  let rec loop sched_state profile step =
    if step >= max_steps then Step_limit { profile; steps = step }
    else begin
      (* The schedule probes players through this memoized move lookup,
         so Max_gain's n probes and the final application share work. *)
      let cache : (int, Best_response.move option) Hashtbl.t = Hashtbl.create 8 in
      let move_of p =
        match Hashtbl.find_opt cache p with
        | Some m -> m
        | None ->
            let m = mover rule game profile p in
            Hashtbl.add cache p m;
            m
      in
      let improving p =
        match move_of p with
        | None -> None
        | Some m -> Some (Game.player_cost game profile p - m.Best_response.cost)
      in
      match Schedule.next_player sched_state ~improving with
      | None -> Converged { profile; steps = step }
      | Some (player, sched_state) -> (
          match move_of player with
          | None -> assert false (* the schedule only returns improvers *)
          | Some m ->
              let old_cost = Game.player_cost game profile player in
              let profile =
                Strategy.with_strategy profile ~player ~targets:m.Best_response.targets
              in
              let step = step + 1 in
              (match on_step with
              | Some f ->
                  f
                    {
                      step;
                      player;
                      old_cost;
                      new_cost = m.Best_response.cost;
                      social_cost = Game.social_cost game profile;
                    }
              | None -> ());
              (match remember step profile with
              | Some period -> Cycle { profile; steps = step; period }
              | None -> loop sched_state profile step))
    end
  in
  loop (Schedule.start schedule ~n) start 0

let stable game rule profile =
  let n = Game.n game in
  let rec check p =
    p >= n || (mover rule game profile p = None && check (p + 1))
  in
  check 0
