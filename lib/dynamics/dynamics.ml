open Bbng_core
module Obs = Bbng_obs

type rule = Exact_best | First_improving | Best_swap | First_swap

let rule_name = function
  | Exact_best -> "exact-best"
  | First_improving -> "first-improving"
  | Best_swap -> "best-swap"
  | First_swap -> "first-swap"

let rule_of_name = function
  | "exact-best" -> Some Exact_best
  | "first-improving" -> Some First_improving
  | "best-swap" -> Some Best_swap
  | "first-swap" -> Some First_swap
  | _ -> None

let mover ?budget rule game profile player =
  (* one span per best-response probe: its p50/p99 is the per-player
     move-selection latency distribution of the whole dynamics run *)
  Obs.Span.with_ "dynamics.select_move" (fun () ->
      match rule with
      | Exact_best | First_improving ->
          (* Both rules apply an exact improving move; Exact_best prefers
             the best one. *)
          if rule = Exact_best then
            Best_response.best_improvement ?budget game profile player
          else Best_response.exact_improvement ?budget game profile player
      | Best_swap -> Best_response.swap_best ?budget game profile player
      | First_swap ->
          Best_response.first_improving_swap ?budget game profile player)

type outcome =
  | Converged of { profile : Strategy.t; steps : int }
  | Cycle of { profile : Strategy.t; steps : int; period : int }
  | Step_limit of { profile : Strategy.t; steps : int }
  | Interrupted of { profile : Strategy.t; steps : int }

let outcome_name = function
  | Converged _ -> "converged"
  | Cycle _ -> "cycle"
  | Step_limit _ -> "step-limit"
  | Interrupted _ -> "interrupted"

let final_profile = function
  | Converged { profile; _ }
  | Cycle { profile; _ }
  | Step_limit { profile; _ }
  | Interrupted { profile; _ } ->
      profile

let steps = function
  | Converged { steps; _ }
  | Cycle { steps; _ }
  | Step_limit { steps; _ }
  | Interrupted { steps; _ } ->
      steps

type trace_entry = {
  step : int;
  player : int;
  old_cost : int;
  new_cost : int;
  social_cost : int;
  old_targets : int array;
  new_targets : int array;
}

module Profile_key = struct
  type t = string
  let of_profile p = Strategy.to_string p
end

let c_steps = Obs.Counter.make "dynamics.steps_applied"
let c_runs = Obs.Counter.make "dynamics.runs"
let h_improvement = Obs.Histogram.make "dynamics.step_improvement"

(* per-window mean improvement as a percentage of the first window's
   mean: 100 = no decay, small = the run is grinding to a halt — the
   decay shape distinguishes geometric convergence from a hard stop *)
let h_decay = Obs.Histogram.make "dynamics.improvement_decay_pct"

let g_social = Obs.Metrics.gauge "dynamics.social_cost"

(* max regret observed among the players probed in the latest step's
   scheduling round: under any schedule the probed non-movers had
   regret 0 and the mover's regret is its improvement, so this reads
   exactly 0 the moment the run converges (every player probed, none
   improving) *)
let g_regret = Obs.Metrics.gauge "dynamics.max_regret"

(* Plateau/oscillation detector: classify each window of applied steps
   by the social-cost trajectory through it.  A strictly falling (net)
   window is converging; a flat window nobody's move disturbed is a
   plateau (players improve privately, the diameter does not move); a
   window whose cost rose and came back — or ended higher — is the
   oscillation signature best-response cycles leave. *)
let diag_window = 16

let classify ~net ~rises ~falls =
  if rises = 0 && falls = 0 && net = 0 then "stalled"
  else if net >= 0 then "cycling-suspected"
  else "converging"

let json_targets a =
  Obs.Json.List (Array.to_list (Array.map (fun t -> Obs.Json.Int t) a))

let emit_entry e =
  Obs.Sink.emit "dynamics.step"
    [
      ("step", Obs.Json.Int e.step);
      ("player", Obs.Json.Int e.player);
      ("old_cost", Obs.Json.Int e.old_cost);
      ("new_cost", Obs.Json.Int e.new_cost);
      ("social_cost", Obs.Json.Int e.social_cost);
      ("old_targets", json_targets e.old_targets);
      ("new_targets", json_targets e.new_targets);
    ]

(* The final event names the rule, the outcome and the final profile so
   a run's JSONL is a self-contained flight recording: [Replay.check]
   can re-apply it without any context beyond the file.  The sink treats
   "dynamics.outcome" as a flush milestone, so even a buffered report is
   a valid JSONL prefix the moment the run closes. *)
let emit_outcome ?(extra = []) game ~schedule ~meta rule outcome =
  Obs.Sink.emit "dynamics.outcome"
    (List.concat
       [
         [
           ("rule", Obs.Json.Str (rule_name rule));
           ("schedule", Obs.Json.Str (Schedule.name schedule));
           ("outcome", Obs.Json.Str (outcome_name outcome));
           ("steps", Obs.Json.Int (steps outcome));
           ( "social_cost",
             Obs.Json.Int (Game.social_cost game (final_profile outcome)) );
           ("profile", Obs.Json.Str (Strategy.to_string (final_profile outcome)));
         ];
         extra;
         (match outcome with
         | Cycle { period; _ } -> [ ("period", Obs.Json.Int period) ]
         | Converged _ | Step_limit _ | Interrupted _ -> []);
         meta;
       ])

let run ?(max_steps = 10_000) ?(detect_cycles = true) ?(meta = []) ?on_step
    ?(budget = Obs.Budgeted.unlimited) game ~schedule ~rule start =
  let n = Game.n game in
  Obs.Counter.bump c_runs;
  if Obs.Sink.active () then
    Obs.Sink.emit "dynamics.start"
      ([
         ("rule", Obs.Json.Str (rule_name rule));
         ("schedule", Obs.Json.Str (Schedule.name schedule));
         ( "version",
           Obs.Json.Str (Cost.version_name (Game.version game)) );
         ( "budgets",
           Obs.Json.List
             (Array.to_list
                (Array.map
                   (fun b -> Obs.Json.Int b)
                   (Budget.to_array (Game.budgets game)))) );
         ("profile", Obs.Json.Str (Strategy.to_string start));
         ("players", Obs.Json.Int n);
         ("max_steps", Obs.Json.Int max_steps);
         ("social_cost", Obs.Json.Int (Game.social_cost game start));
       ]
      @ meta);
  (* heartbeat task: one unit per applied step, bounded by max_steps,
     carrying the run's budget headroom into each beat *)
  let progress = Obs.Progress.start ~total:max_steps ~budget "dynamics" in
  let seen : (Profile_key.t, int) Hashtbl.t = Hashtbl.create 256 in
  let remember step profile =
    if detect_cycles then begin
      let key = Profile_key.of_profile profile in
      match Hashtbl.find_opt seen key with
      | Some earlier -> Some (step - earlier)
      | None ->
          Hashtbl.add seen key step;
          None
    end
    else None
  in
  ignore (remember 0 start);
  (* --- convergence diagnostics (see [classify]) --- *)
  let sc0 = Game.social_cost game start in
  let prev_cost = ref sc0 in
  let rises = ref 0 and falls = ref 0 in
  let win_start_cost = ref sc0 in
  let win_improv_sum = ref 0 and win_count = ref 0 in
  let first_win_mean = ref None in
  let diag_state = ref "converging" in
  let last_regret = ref 0 in
  let emit_diagnosis ?(fields = []) ~step state =
    diag_state := state;
    Obs.Progress.annotate progress
      [ ("diagnosis", Obs.Json.Str state) ];
    if Obs.Sink.active () then
      Obs.Sink.emit "dynamics.diagnosis"
        ([
           ("step", Obs.Json.Int step);
           ("state", Obs.Json.Str state);
           ("social_cost", Obs.Json.Int !prev_cost);
         ]
        @ fields)
  in
  let flush_window ~step =
    if !win_count > 0 then begin
      let mean = float_of_int !win_improv_sum /. float_of_int !win_count in
      if !first_win_mean = None then first_win_mean := Some mean;
      let decay_pct =
        match !first_win_mean with
        | Some f when f > 0. -> 100. *. mean /. f
        | _ -> 100.
      in
      Obs.Histogram.record h_decay
        (int_of_float (Float.round decay_pct));
      let net = !prev_cost - !win_start_cost in
      emit_diagnosis ~step
        (classify ~net ~rises:!rises ~falls:!falls)
        ~fields:
          [
            ("window", Obs.Json.Int !win_count);
            ("net_social_cost", Obs.Json.Int net);
            ("rises", Obs.Json.Int !rises);
            ("falls", Obs.Json.Int !falls);
            ("mean_improvement", Obs.Json.Float mean);
            ("decay_pct", Obs.Json.Float decay_pct);
          ];
      rises := 0;
      falls := 0;
      win_start_cost := !prev_cost;
      win_improv_sum := 0;
      win_count := 0
    end
  in
  let record_step ~improvement ~step social =
    if social > !prev_cost then incr rises
    else if social < !prev_cost then incr falls;
    prev_cost := social;
    Obs.Metrics.set_int g_social social;
    win_improv_sum := !win_improv_sum + improvement;
    incr win_count;
    if !win_count >= diag_window then flush_window ~step
  in
  let finish outcome =
    flush_window ~step:(steps outcome);
    (* final verdict aligned with the typed outcome: a proven cycle is
       the thing the detector only suspects, and convergence overrides
       whatever the last window looked like *)
    let final_state =
      match outcome with
      | Converged _ ->
          last_regret := 0;
          "converging"
      | Cycle _ -> "cycling-suspected"
      | Step_limit _ | Interrupted _ -> !diag_state
    in
    emit_diagnosis ~step:(steps outcome) final_state
      ~fields:[ ("final", Obs.Json.Bool true) ];
    let final_sc = Game.social_cost game (final_profile outcome) in
    Obs.Ledger.add_metric "dynamics.final_social_cost" (Obs.Json.Int final_sc);
    Obs.Ledger.add_metric "dynamics.steps" (Obs.Json.Int (steps outcome));
    Obs.Ledger.add_metric "dynamics.max_regret" (Obs.Json.Int !last_regret);
    Obs.Ledger.add_metric "dynamics.diagnosis" (Obs.Json.Str final_state);
    Obs.Ledger.note_outcome (outcome_name outcome);
    Obs.Progress.finish progress;
    emit_outcome game ~schedule ~meta rule outcome
      ~extra:
        [
          ("max_regret", Obs.Json.Int !last_regret);
          ("diagnosis", Obs.Json.Str final_state);
        ];
    outcome
  in
  let rec loop sched_state profile step =
    if step >= max_steps then finish (Step_limit { profile; steps = step })
    else if Obs.Budgeted.expired budget then
      (* checked between steps as well as inside the move search, so a
         token cancelled from outside stops the run even when every
         individual move is cheap *)
      finish (Interrupted { profile; steps = step })
    else begin
      (* The schedule probes players through this memoized move lookup,
         so Max_gain's n probes and the final application share work. *)
      let cache : (int, Best_response.move option) Hashtbl.t = Hashtbl.create 8 in
      let move_of p =
        match Hashtbl.find_opt cache p with
        | Some m -> m
        | None ->
            let m = mover ~budget rule game profile p in
            Hashtbl.add cache p m;
            m
      in
      let step_max_regret = ref 0 in
      let improving p =
        match move_of p with
        | None -> None
        | Some m ->
            let gain = Game.player_cost game profile p - m.Best_response.cost in
            if gain > !step_max_regret then step_max_regret := gain;
            Some gain
      in
      (* the probe is where the budgeted best-response search runs; an
         expiry mid-probe lands here, is converted to the typed outcome
         (the step was not applied, so [profile]/[step] are the last
         consistent state), and the recording still closes with a
         [dynamics.outcome] event — the report stays replayable *)
      let probed =
        try `Next (Schedule.next_player sched_state ~improving)
        with Obs.Budgeted.Expired -> `Expired
      in
      match probed with
      | `Expired -> finish (Interrupted { profile; steps = step })
      | `Next None ->
          (* every player probed, nobody improves: the regret gauge
             reads an exact 0, not the last applied improvement *)
          Obs.Metrics.set_int g_regret 0;
          last_regret := 0;
          finish (Converged { profile; steps = step })
      | `Next (Some (player, sched_state)) -> (
          match move_of player with
          | None -> assert false (* the schedule only returns improvers *)
          | Some m ->
              let old_cost = Game.player_cost game profile player in
              let old_targets = Strategy.strategy profile player in
              let profile =
                Strategy.with_strategy profile ~player ~targets:m.Best_response.targets
              in
              let step = step + 1 in
              Obs.Counter.bump c_steps;
              Obs.Progress.step progress;
              let improvement = old_cost - m.Best_response.cost in
              Obs.Metrics.set_int g_regret !step_max_regret;
              last_regret := !step_max_regret;
              let social = Game.social_cost game profile in
              record_step ~improvement ~step social;
              if Obs.Span.enabled () then
                Obs.Histogram.record h_improvement improvement;
              if Option.is_some on_step || Obs.Sink.active () then begin
                let entry =
                  {
                    step;
                    player;
                    old_cost;
                    new_cost = m.Best_response.cost;
                    social_cost = social;
                    old_targets;
                    new_targets = m.Best_response.targets;
                  }
                in
                (match on_step with Some f -> f entry | None -> ());
                emit_entry entry
              end;
              (match remember step profile with
              | Some period -> finish (Cycle { profile; steps = step; period })
              | None -> loop sched_state profile step))
    end
  in
  (* [finish] already closed the task on every typed outcome; the
     protect covers raise paths (idempotent, so no double beat).  The
     outer span makes every per-step span (dynamics.select_move and
     below) a child path in the profile: "dynamics.run;..." *)
  Obs.Span.time "dynamics.run" @@ fun () ->
  Fun.protect
    ~finally:(fun () -> Obs.Progress.finish progress)
    (fun () -> loop (Schedule.start schedule ~n) start 0)

let stable game rule profile =
  let n = Game.n game in
  let rec check p =
    p >= n || (mover rule game profile p = None && check (p + 1))
  in
  check 0
