module Undirected = Bbng_graph.Undirected
module Bfs = Bbng_graph.Bfs
module Combinatorics = Bbng_graph.Combinatorics

type solution = { centers : int array; radius : int }

let c_degraded = Bbng_obs.Counter.make "kcenter.degraded_solves"

let evaluate ?budget g centers =
  if Array.length centers = 0 then invalid_arg "K_center.evaluate: empty centers";
  let n = Undirected.n g in
  let dist = Bfs.distances_from_set ?budget g (Array.to_list centers) in
  Array.fold_left
    (fun acc d -> max acc (if d = Bfs.unreachable then n else d))
    0 dist

let check_k g k =
  let n = Undirected.n g in
  if k < 1 || k > n then invalid_arg "K_center: need 1 <= k <= n"

let exact g ~k =
  check_k g k;
  let n = Undirected.n g in
  match
    Combinatorics.fold_best ~n ~k ~score:(fun c -> evaluate g c) ~stop_at:0 ()
  with
  | Some (centers, radius) -> { centers; radius }
  | None -> assert false

let gonzalez ?(seed = 0) g ~k =
  check_k g k;
  let n = Undirected.n g in
  let first = ((seed mod n) + n) mod n in
  let chosen = ref [ first ] in
  for _ = 2 to k do
    let dist = Bfs.distances_from_set g !chosen in
    (* Farthest vertex from the current set; unreachable counts as n. *)
    let best_v = ref (-1) and best_d = ref (-1) in
    for v = 0 to n - 1 do
      let d = if dist.(v) = Bfs.unreachable then n else dist.(v) in
      if (not (List.mem v !chosen)) && d > !best_d then begin
        best_d := d;
        best_v := v
      end
    done;
    chosen := !best_v :: !chosen
  done;
  let centers = Array.of_list !chosen in
  Array.sort compare centers;
  { centers; radius = evaluate g centers }

(* Same enumeration as [exact], but candidate BFS calls carry the
   caller's cancellation token.  On expiry the best center set priced
   so far is returned as a typed [Degraded] result (an upper bound on
   the optimum, not a proof of optimality); [Exhausted] means not even
   one candidate was fully priced.  Ties break toward the earlier
   (lexicographically smaller) set, matching [exact]. *)
let exact_within ?(budget = Bbng_obs.Budgeted.unlimited) g ~k =
  check_k g k;
  let n = Undirected.n g in
  let best = ref None in
  let consider c r =
    match !best with
    | Some (_, br) when br <= r -> ()
    | _ -> best := Some (Array.copy c, r)
  in
  let finished =
    try
      Combinatorics.iter_combinations ~n ~k (fun c ->
          let r = evaluate ~budget g c in
          consider c r;
          if r = 0 then raise Exit);
      true
    with
    | Exit -> true
    | Bbng_obs.Budgeted.Expired -> false
  in
  match (finished, !best) with
  | true, Some (centers, radius) ->
      Bbng_obs.Budgeted.Complete { centers; radius }
  | true, None -> assert false (* k >= 1 always yields candidates *)
  | false, Some (centers, radius) ->
      Bbng_obs.Counter.bump c_degraded;
      Bbng_obs.Budgeted.Degraded { centers; radius }
  | false, None -> Bbng_obs.Budgeted.Exhausted

exception Found of int array

let decision g ~k ~radius =
  check_k g k;
  let n = Undirected.n g in
  try
    Combinatorics.iter_combinations ~n ~k (fun c ->
        if evaluate g c <= radius then raise (Found (Array.copy c)));
    None
  with Found c -> Some c
