(** The k-median problem.

    Choose [k] centers minimizing [sum_v dist(v, S)] (unreachable
    vertices contribute [n] each).  This is the SUM-version half of
    Theorem 2.1: a best response in the SUM game is exactly a k-median
    solution of the rest of the network.  Exact solver by enumeration,
    plus single-swap local search as the polynomial baseline (the
    classical 5-approximation move set of Arya et al.). *)

type solution = {
  centers : int array;  (** sorted *)
  cost : int;           (** [sum_v dist(v, centers)] *)
}

val evaluate :
  ?budget:Bbng_obs.Budgeted.t -> Bbng_graph.Undirected.t -> int array -> int
(** Cost of an explicit center set.  [?budget] (default unlimited) is
    checkpointed by the underlying BFS.
    @raise Invalid_argument on an empty center set.
    @raise Bbng_obs.Budgeted.Expired once the token has expired. *)

val exact : Bbng_graph.Undirected.t -> k:int -> solution
(** Optimal solution by subset enumeration.
    @raise Invalid_argument unless [1 <= k <= n]. *)

val exact_within :
  ?budget:Bbng_obs.Budgeted.t ->
  Bbng_graph.Undirected.t ->
  k:int ->
  solution Bbng_obs.Budgeted.outcome
(** Deadline-aware {!exact}: [Complete s] with the optimum when the
    enumeration finishes inside the budget, [Degraded s] with the best
    center set priced before the token tripped (an upper bound on the
    optimal cost), [Exhausted] if not even one candidate was priced.
    Never raises on expiry. *)

val local_search : ?seed:int -> Bbng_graph.Undirected.t -> k:int -> solution
(** Start from the [seed]-rotated first [k] vertices and apply
    single-center swaps while they strictly improve; terminates at a
    1-swap-local optimum. *)
