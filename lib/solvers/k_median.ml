module Undirected = Bbng_graph.Undirected
module Bfs = Bbng_graph.Bfs
module Combinatorics = Bbng_graph.Combinatorics

type solution = { centers : int array; cost : int }

let c_degraded = Bbng_obs.Counter.make "kmedian.degraded_solves"

let evaluate ?budget g centers =
  if Array.length centers = 0 then invalid_arg "K_median.evaluate: empty centers";
  let n = Undirected.n g in
  let dist = Bfs.distances_from_set ?budget g (Array.to_list centers) in
  Array.fold_left
    (fun acc d -> acc + if d = Bfs.unreachable then n else d)
    0 dist

let check_k g k =
  let n = Undirected.n g in
  if k < 1 || k > n then invalid_arg "K_median: need 1 <= k <= n"

let exact g ~k =
  check_k g k;
  let n = Undirected.n g in
  match Combinatorics.fold_best ~n ~k ~score:(fun c -> evaluate g c) () with
  | Some (centers, cost) -> { centers; cost }
  | None -> assert false

(* Budget-honouring [exact]; see K_center.exact_within for the
   contract (identical, with cost in place of radius and no radius-0
   early exit — a sum can legitimately be beaten until the very last
   candidate). *)
let exact_within ?(budget = Bbng_obs.Budgeted.unlimited) g ~k =
  check_k g k;
  let n = Undirected.n g in
  let best = ref None in
  let finished =
    try
      Combinatorics.iter_combinations ~n ~k (fun c ->
          let cost = evaluate ~budget g c in
          match !best with
          | Some (_, bc) when bc <= cost -> ()
          | _ -> best := Some (Array.copy c, cost));
      true
    with Bbng_obs.Budgeted.Expired -> false
  in
  match (finished, !best) with
  | true, Some (centers, cost) -> Bbng_obs.Budgeted.Complete { centers; cost }
  | true, None -> assert false (* k >= 1 always yields candidates *)
  | false, Some (centers, cost) ->
      Bbng_obs.Counter.bump c_degraded;
      Bbng_obs.Budgeted.Degraded { centers; cost }
  | false, None -> Bbng_obs.Budgeted.Exhausted

let local_search ?(seed = 0) g ~k =
  check_k g k;
  let n = Undirected.n g in
  let centers = Array.init k (fun i -> (i + seed mod n + n) mod n) in
  (* The rotation can collide for seed mod n > n - k; fall back to a
     collision-free initial set in that case. *)
  let distinct a =
    let sorted = Array.copy a in
    Array.sort compare sorted;
    let ok = ref true in
    for i = 1 to Array.length sorted - 1 do
      if sorted.(i) = sorted.(i - 1) then ok := false
    done;
    !ok
  in
  let centers = if distinct centers then centers else Array.init k Fun.id in
  Array.sort compare centers;
  let current = ref centers in
  let current_cost = ref (evaluate g !current) in
  let improved = ref true in
  while !improved do
    improved := false;
    let in_centers v = Array.exists (fun c -> c = v) !current in
    (* Try every (center out, vertex in) swap, take the first strict
       improvement (first-improvement converges like best-improvement
       and is cheaper per round). *)
    (try
       Array.iteri
         (fun idx _ ->
           for v = 0 to n - 1 do
             if not (in_centers v) then begin
               let candidate = Array.copy !current in
               candidate.(idx) <- v;
               Array.sort compare candidate;
               let cost = evaluate g candidate in
               if cost < !current_cost then begin
                 current := candidate;
                 current_cost := cost;
                 improved := true;
                 raise Exit
               end
             end
           done)
         !current
     with Exit -> ())
  done;
  { centers = !current; cost = !current_cost }
