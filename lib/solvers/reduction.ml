open Bbng_core
module Undirected = Bbng_graph.Undirected

type instance = {
  game : Game.t;
  profile : Strategy.t;
  new_player : int;
  base_n : int;
}

let build version h ~k =
  let n = Undirected.n h in
  if k < 1 || k > n then invalid_arg "Reduction: need 1 <= k <= n";
  (* Orient H: each edge goes from its smaller endpoint. *)
  let strategies = Array.make (n + 1) [] in
  Undirected.iter_edges (fun u v -> strategies.(u) <- v :: strategies.(u)) h;
  strategies.(n) <- List.init k Fun.id;
  let strategies = Array.map Array.of_list strategies in
  let budgets = Budget.of_array (Array.map Array.length strategies) in
  {
    game = Game.make version budgets;
    profile = Strategy.make budgets strategies;
    new_player = n;
    base_n = n;
  }

let of_center_instance h ~k = build Cost.Max h ~k
let of_median_instance h ~k = build Cost.Sum h ~k

let strategy_cost inst targets =
  Game.deviation_cost inst.game inst.profile ~player:inst.new_player ~targets

let best_response inst =
  Best_response.exact inst.game inst.profile inst.new_player

let solve_center_via_game h ~k =
  let inst = of_center_instance h ~k in
  let move = best_response inst in
  { K_center.centers = move.Best_response.targets;
    radius = move.Best_response.cost - 1 }

let solve_median_via_game h ~k =
  let inst = of_median_instance h ~k in
  let move = best_response inst in
  { K_median.centers = move.Best_response.targets;
    cost = move.Best_response.cost - inst.base_n }
