open Bbng_core
(** The Theorem 2.1 reduction, executable.

    Given a k-center (resp. k-median) instance — an undirected graph [H]
    on [n] vertices and a budget [k] — build the [(b_1, ..., b_n, k)]-BG
    position in which players [0 .. n-1] realize an arbitrary orientation
    of [H] and the fresh player [n] has budget [k].  The fresh player's
    best responses are exactly the optimal k-center (MAX version) /
    k-median (SUM version) solutions of [H]:

    - [c_MAX(new) = 1 + radius(S)]
    - [c_SUM(new) = n + median_cost(S)]

    for every strategy [S] of the new player, {e provided [H] is
    connected} (disconnected instances diverge only in how the two sides
    price infinity).  The test suite cross-validates both equalities
    against brute force, which is the paper's NP-hardness argument run
    in reverse. *)

type instance = {
  game : Game.t;
  profile : Strategy.t;  (** others fixed; the new player holds a
                             placeholder strategy [{0, ..., k-1}] *)
  new_player : int;      (** index [n] *)
  base_n : int;          (** [n], the size of the original graph *)
}

val of_center_instance : Bbng_graph.Undirected.t -> k:int -> instance
(** MAX-version game position for a k-center instance.
    @raise Invalid_argument unless [1 <= k <= n]. *)

val of_median_instance : Bbng_graph.Undirected.t -> k:int -> instance
(** SUM-version game position for a k-median instance. *)

val strategy_cost : instance -> int array -> int
(** Game cost incurred to the new player when it plays the given
    target set. *)

val best_response : instance -> Best_response.move
(** Exact best response of the new player (brute force). *)

val solve_center_via_game : Bbng_graph.Undirected.t -> k:int -> K_center.solution
(** k-center through the game: best response of the new player, radius
    recovered as [cost - 1].  Must agree with {!K_center.exact} on
    connected graphs. *)

val solve_median_via_game : Bbng_graph.Undirected.t -> k:int -> K_median.solution
(** k-median through the game: cost recovered as [cost - n]. *)
