(** The k-center problem.

    Given an undirected graph and [k], choose a set [S] of [k] vertices
    minimizing [max_v dist(v, S)].  Theorem 2.1 reduces k-center to
    best-response computation in the MAX version, which is how the
    paper proves the latter NP-hard; this module provides the exact
    solver used to cross-validate that reduction, and the classical
    Gonzalez 2-approximation as the polynomial baseline.

    Costs use hop distances; a vertex unreachable from all of [S]
    contributes [n] (an impossible finite distance, standing in for
    infinity without leaving integers). *)

type solution = {
  centers : int array;  (** sorted *)
  radius : int;         (** [max_v dist(v, centers)] *)
}

val evaluate :
  ?budget:Bbng_obs.Budgeted.t -> Bbng_graph.Undirected.t -> int array -> int
(** Radius of an explicit center set.  [?budget] (default unlimited) is
    checkpointed by the underlying BFS.
    @raise Invalid_argument on an empty center set.
    @raise Bbng_obs.Budgeted.Expired once the token has expired. *)

val exact : Bbng_graph.Undirected.t -> k:int -> solution
(** Optimal solution by subset enumeration with an early-exit at radius
    0/1 floors.  [C(n, k)] multi-source BFS calls.
    @raise Invalid_argument unless [1 <= k <= n]. *)

val exact_within :
  ?budget:Bbng_obs.Budgeted.t ->
  Bbng_graph.Undirected.t ->
  k:int ->
  solution Bbng_obs.Budgeted.outcome
(** Deadline-aware {!exact}: [Complete s] with the optimum when the
    enumeration finishes inside the budget, [Degraded s] with the best
    center set priced before the token tripped (an upper bound on the
    optimal radius), [Exhausted] if not even one candidate was priced.
    Never raises on expiry. *)

val gonzalez : ?seed:int -> Bbng_graph.Undirected.t -> k:int -> solution
(** Farthest-point traversal: a 2-approximation on connected graphs
    (the first center is vertex [seed mod n], default 0). *)

val decision : Bbng_graph.Undirected.t -> k:int -> radius:int -> int array option
(** [Some centers] iff some [k]-set achieves the given radius — the
    NP-complete decision form, by bounded enumeration. *)
