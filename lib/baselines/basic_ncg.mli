open Bbng_core
(** Basic network creation games of Alon, Demaine, Hajiaghayi and
    Leighton (SPAA 2010) — the second comparison model of Section 1.1.

    In the basic game there is no ownership: the state is just an
    undirected graph, and a move lets {e either} endpoint of an edge
    swap that edge for an edge to any other vertex.  A graph is a
    {e swap equilibrium} if no such single-edge swap strictly decreases
    the mover's cost (MAX or SUM).

    The paper's Section 1.1 makes a sharp comparative claim: in the
    basic game, {e tree} swap equilibria have diameter at most 3 in the
    MAX version, whereas the bounded-budget game has MAX tree equilibria
    of diameter Theta(n) (the tripod).  The difference is exactly
    ownership: in the tripod, leg vertex [x_2] suffers distance ~2k but
    does not own the far-side edges it would need to swap; in Alon's
    model it may swap {e any} incident edge, and the tripod collapses.
    [tripod_is_swap_eq] lets the harness demonstrate this. *)

val swap_moves : Bbng_graph.Undirected.t -> int -> (int * int) list
(** All legal moves of vertex [v]: pairs [(drop, add)] meaning "replace
    edge [v-drop] by edge [v-add]" ([add] not already adjacent,
    [add <> v]). *)

val apply_swap : Bbng_graph.Undirected.t -> int -> drop:int -> add:int ->
  Bbng_graph.Undirected.t

val improving_swap :
  Cost.version -> Bbng_graph.Undirected.t -> int -> (int * int * int) option
(** [(drop, add, new_cost)] for the first strictly improving swap of a
    vertex, [None] if it has none. *)

val is_swap_equilibrium : Cost.version -> Bbng_graph.Undirected.t -> bool
(** No vertex has an improving swap. *)

val certify : Cost.version -> Bbng_graph.Undirected.t ->
  (int * int * int * int) option
(** [None] at equilibrium; otherwise [(vertex, drop, add, new_cost)]
    witnessing instability. *)

val bbg_nash_implies_basic_instability_witness :
  Cost.version -> Strategy.t -> (int * int * int * int) option
(** Runs {!certify} on a bounded-budget profile's underlying graph:
    a [Some] result exhibits a profile that is Nash-stable under
    ownership yet swap-unstable once ownership is erased. *)
