open Bbng_core
module Digraph = Bbng_graph.Digraph
module Bfs = Bbng_graph.Bfs

let directed_distances g src =
  let n = Digraph.n g in
  let dist = Array.make n Bfs.unreachable in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun v ->
        if dist.(v) = Bfs.unreachable then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      (Digraph.out_neighbors g u)
  done;
  dist

let cost_of_distances ~n dist =
  let inf = n * n in
  Array.fold_left
    (fun acc d -> acc + if d = Bfs.unreachable then inf else d)
    0 dist

let cost_in_digraph g player =
  cost_of_distances ~n:(Digraph.n g) (directed_distances g player)

let player_cost profile player = cost_in_digraph (Strategy.realize profile) player

let costs profile =
  let g = Strategy.realize profile in
  Array.init (Strategy.n profile) (cost_in_digraph g)

let deviation_cost profile ~player ~targets =
  if Array.length targets <> Budget.get (Strategy.budgets profile) player then
    invalid_arg "Bbc.deviation_cost: budget violation";
  let g = Digraph.replace_out_neighbors (Strategy.realize profile) player targets in
  cost_in_digraph g player

let unshift player c = Array.map (fun i -> if i < player then i else i + 1) c

let best_response profile player =
  let n = Strategy.n profile in
  let b = Budget.get (Strategy.budgets profile) player in
  let base = Strategy.realize profile in
  let eval targets =
    cost_in_digraph (Digraph.replace_out_neighbors base player targets) player
  in
  match
    Bbng_graph.Combinatorics.fold_best ~n:(n - 1) ~k:b
      ~score:(fun c -> eval (unshift player c))
      ()
  with
  | Some (c, cost) -> { Best_response.targets = unshift player c; cost }
  | None -> assert false

let exact_improvement profile player =
  let current = player_cost profile player in
  let best = best_response profile player in
  if best.Best_response.cost < current then Some best else None

let is_nash profile =
  let n = Strategy.n profile in
  let rec go p = p >= n || (exact_improvement profile p = None && go (p + 1)) in
  go 0

let social_diameter profile =
  let g = Strategy.realize profile in
  let n = Digraph.n g in
  let worst = ref 0 in
  for v = 0 to n - 1 do
    let dist = directed_distances g v in
    Array.iter
      (fun d -> worst := max !worst (if d = Bfs.unreachable then n * n else d))
      dist
  done;
  !worst
