open Bbng_core
module Undirected = Bbng_graph.Undirected

let swap_moves g v =
  let n = Undirected.n g in
  let moves = ref [] in
  Array.iter
    (fun drop ->
      for add = n - 1 downto 0 do
        if add <> v && add <> drop && not (Undirected.mem_edge g v add) then
          moves := (drop, add) :: !moves
      done)
    (Undirected.neighbors g v);
  !moves

let apply_swap g v ~drop ~add =
  if not (Undirected.mem_edge g v drop) then
    invalid_arg "Basic_ncg.apply_swap: edge to drop is absent";
  if Undirected.mem_edge g v add || add = v then
    invalid_arg "Basic_ncg.apply_swap: edge to add is invalid";
  let edges =
    (v, add)
    :: List.filter
         (fun (a, b) -> not ((a = v && b = drop) || (a = drop && b = v)))
         (Undirected.edges g)
  in
  Undirected.of_edges ~n:(Undirected.n g) edges

let improving_swap version g v =
  let current = Cost.vertex_cost version g v in
  let rec scan = function
    | [] -> None
    | (drop, add) :: rest ->
        let g' = apply_swap g v ~drop ~add in
        let cost = Cost.vertex_cost version g' v in
        if cost < current then Some (drop, add, cost) else scan rest
  in
  scan (swap_moves g v)

let certify version g =
  let n = Undirected.n g in
  let rec go v =
    if v >= n then None
    else
      match improving_swap version g v with
      | Some (drop, add, cost) -> Some (v, drop, add, cost)
      | None -> go (v + 1)
  in
  go 0

let is_swap_equilibrium version g = certify version g = None

let bbg_nash_implies_basic_instability_witness version profile =
  certify version (Strategy.underlying profile)
