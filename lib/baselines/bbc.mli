open Bbng_core
(** The directed Bounded Budget Connection (BBC) game of Laoutaris,
    Poplawski, Rajaraman, Sundaram and Teng (PODC 2008) — the model the
    paper is "mainly motivated by" (Section 1.1).

    Differences from the paper's game, faithfully implemented here:
    - links are {e directed}: an arc [u -> v] can be used only by its
      owner [u], so distances are directed-path distances in [G]
      itself, not in [U(G)];
    - each player's cost is its {e total} directed distance to the
      other players (the SUM objective; Laoutaris et al. use average
      distance, which is the same up to the constant [1/(n-1)]);
    - unreachable vertices are priced at [Cinf = n^2], mirroring the
      paper's convention so the two models are comparable.

    The point of carrying this baseline: Section 1.1's comparative
    claims become checkable — e.g. the same strategy profile can be
    stable in one model and unstable in the other, and Laoutaris et
    al. prove best-response dynamics need not converge in the directed
    model.  The experiment harness measures both. *)

val directed_distances : Bbng_graph.Digraph.t -> int -> int array
(** BFS along arc directions; [Bfs.unreachable] where no directed path
    exists. *)

val player_cost : Strategy.t -> int -> int
(** Directed SUM cost of a player under the BBC semantics. *)

val costs : Strategy.t -> int array

val deviation_cost : Strategy.t -> player:int -> targets:int array -> int
(** Cost to [player] if it re-points its arcs to [targets]. *)

val best_response : Strategy.t -> int -> Best_response.move
(** Exact directed best response (enumerates all [C(n-1,b)] subsets). *)

val exact_improvement : Strategy.t -> int -> Best_response.move option
(** First strictly improving directed deviation, [None] at a best
    response. *)

val is_nash : Strategy.t -> bool
(** Pure Nash equilibrium of the directed game. *)

val social_diameter : Strategy.t -> int
(** Maximum directed distance over ordered pairs ([n^2] when some pair
    is unreachable). *)
