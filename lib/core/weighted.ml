module Digraph = Bbng_graph.Digraph
module Undirected = Bbng_graph.Undirected
module Bfs = Bbng_graph.Bfs

type t = {
  n : int;
  alive_mask : bool array;
  weights : int array;
  out : int list array;            (* arcs among alive vertices *)
  underlying : Undirected.t Lazy.t;
}

let build n alive_mask weights out =
  let underlying =
    lazy
      (let edges = ref [] in
       Array.iteri
         (fun u targets -> List.iter (fun v -> edges := (u, v) :: !edges) targets)
         out;
       Undirected.of_edges ~n !edges)
  in
  { n; alive_mask; weights; out; underlying }

let of_digraph g =
  let n = Digraph.n g in
  build n (Array.make n true) (Array.make n 1)
    (Array.init n (fun u -> Array.to_list (Digraph.out_neighbors g u)))

let of_profile p = of_digraph (Strategy.realize p)

let n t = t.n
let is_alive t v = v >= 0 && v < t.n && t.alive_mask.(v)

let alive t =
  let acc = ref [] in
  for v = t.n - 1 downto 0 do
    if t.alive_mask.(v) then acc := v :: !acc
  done;
  !acc

let alive_count t =
  Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 t.alive_mask

let check_alive t v =
  if not (is_alive t v) then
    invalid_arg (Printf.sprintf "Weighted: vertex %d is dead or out of range" v)

let weight t v = check_alive t v; t.weights.(v)

let total_weight t =
  let acc = ref 0 in
  for v = 0 to t.n - 1 do
    if t.alive_mask.(v) then acc := !acc + t.weights.(v)
  done;
  !acc

let underlying t = Lazy.force t.underlying
let out_neighbors t v = check_alive t v; t.out.(v)

let weighted_cost t u =
  check_alive t u;
  let dist = Bfs.distances (underlying t) u in
  let inf = t.n * t.n in
  let acc = ref 0 in
  for v = 0 to t.n - 1 do
    if t.alive_mask.(v) && v <> u then
      acc := !acc + (t.weights.(v) * if dist.(v) = Bfs.unreachable then inf else dist.(v))
  done;
  !acc

let degree t v =
  let u = underlying t in
  Undirected.degree u v

let out_degree t v = List.length t.out.(v)

let leaves_with pred t =
  List.filter (fun v -> degree t v = 1 && pred (out_degree t v)) (alive t)

let poor_leaves t = leaves_with (fun d -> d = 0) t
let rich_leaves t = leaves_with (fun d -> d = 1) t

let sole_neighbor t v =
  match Undirected.neighbors (underlying t) v with
  | [| u |] -> u
  | _ -> invalid_arg (Printf.sprintf "Weighted: vertex %d is not a leaf" v)

let fold_poor_leaf t leaf =
  check_alive t leaf;
  if not (degree t leaf = 1 && out_degree t leaf = 0) then
    invalid_arg (Printf.sprintf "Weighted.fold_poor_leaf: %d is not a poor leaf" leaf);
  let support = sole_neighbor t leaf in
  let alive_mask = Array.copy t.alive_mask in
  let weights = Array.copy t.weights in
  let out = Array.map (List.filter (fun v -> v <> leaf)) t.out in
  alive_mask.(leaf) <- false;
  weights.(support) <- weights.(support) + weights.(leaf);
  build t.n alive_mask weights out

let fold_all_poor_leaves t =
  let rec go t count =
    match poor_leaves t with
    | [] -> (t, count)
    | leaf :: _ -> go (fold_poor_leaf t leaf) (count + 1)
  in
  go t 0

let rich_leaves_within_2 t =
  let rl = rich_leaves t in
  let g = underlying t in
  let rec pairs = function
    | [] -> true
    | u :: rest ->
        let dist = Bfs.distances g u in
        List.for_all (fun v -> dist.(v) <> Bfs.unreachable && dist.(v) <= 2) rest
        && pairs rest
  in
  pairs rl

let degree2_edges t =
  let g = underlying t in
  let acc = ref [] in
  Undirected.iter_edges
    (fun u v ->
      if Undirected.degree g u = 2 && Undirected.degree g v = 2 then
        acc := (u, v) :: !acc)
    g;
  List.rev !acc

let contract_edge t u v =
  check_alive t u;
  check_alive t v;
  if not (Undirected.mem_edge (underlying t) u v) then
    invalid_arg "Weighted.contract_edge: edge absent";
  let alive_mask = Array.copy t.alive_mask in
  let weights = Array.copy t.weights in
  alive_mask.(v) <- false;
  weights.(u) <- weights.(u) + weights.(v);
  (* Redirect every incidence of v to u, dropping the self-loops this
     creates (the contracted pair) and merging duplicates. *)
  let redirect w = if w = v then u else w in
  let out =
    Array.mapi
      (fun src targets ->
        if src = v then []
        else
          let targets = List.map redirect targets in
          let targets =
            if src = u then List.filter (fun w -> w <> u) targets else targets
          in
          List.sort_uniq compare targets)
      t.out
  in
  (* v's own arcs move to u. *)
  let moved = List.filter (fun w -> w <> u) (List.map redirect t.out.(v)) in
  out.(u) <- List.sort_uniq compare (moved @ out.(u));
  build t.n alive_mask weights out

let contract_all_degree2 t =
  let rec go t count =
    match degree2_edges t with
    | [] -> (t, count)
    | (u, v) :: _ -> go (contract_edge t u v) (count + 1)
  in
  go t 0

let is_weak_equilibrium t =
  let alive_vs = alive t in
  List.for_all
    (fun u ->
      let base_cost = weighted_cost t u in
      let owned = t.out.(u) in
      List.for_all
        (fun dropped ->
          List.for_all
            (fun x ->
              if x = u || List.mem x owned then true
              else begin
                let out = Array.copy t.out in
                out.(u) <- x :: List.filter (fun w -> w <> dropped) owned;
                let t' = build t.n t.alive_mask t.weights out in
                weighted_cost t' u >= base_cost
              end)
            alive_vs)
        owned)
    alive_vs

let pp ppf t =
  Format.fprintf ppf "weighted{";
  List.iter
    (fun v ->
      Format.fprintf ppf " %d(w=%d)->[%a]" v t.weights.(v)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_int)
        t.out.(v))
    (alive t);
  Format.fprintf ppf " }"
