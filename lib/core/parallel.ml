let recommended_domains () = max 1 (Domain.recommended_domain_count () - 1)

let c_spawned = Bbng_obs.Counter.make "parallel.domains_spawned"
let c_abandoned = Bbng_obs.Counter.make "parallel.chunks_abandoned"

(* per-domain sharded: every worker bumps its own cell, so recording
   from k domains costs no cache-line contention, and the snapshot sums
   shards — the same count whether the work ran on 1 domain or 8 *)
let m_tasks = Bbng_obs.Metrics.counter "parallel.tasks_executed"

(* indices this worker never evaluated because the early-exit flag
   tripped; each per-index task is one "chunk" of the block-cyclic
   distribution *)
let abandoned_by ~n ~k i = if i < n then (n - i + k - 1) / k else 0

(* Block-cyclic index distribution: domain d handles indices
   d, d + k, d + 2k, ...  This balances heterogeneous per-index work
   (low player indices are not systematically cheaper). *)

let for_all ?domains ~n f =
  let k = min n (match domains with Some d -> max 1 d | None -> recommended_domains ()) in
  if k <= 1 || n <= 1 then begin
    let rec go i =
      i >= n
      ||
      (Bbng_obs.Metrics.incr m_tasks;
       f i && go (i + 1))
    in
    go 0
  end
  else begin
    let failed = Atomic.make false in
    let worker d () =
      let i = ref d in
      while (not (Atomic.get failed)) && !i < n do
        Bbng_obs.Metrics.incr m_tasks;
        if not (f !i) then Atomic.set failed true;
        i := !i + k
      done;
      Bbng_obs.Counter.add c_abandoned (abandoned_by ~n ~k !i)
    in
    (* spawned workers root their span paths under the caller's current
       call path, so a parallel fan-out's spans fold into the same
       flamegraph branch as the single-domain run's *)
    let base = Bbng_obs.Profile.current_path () in
    let spawned =
      List.init (k - 1) (fun d ->
          Domain.spawn (fun () ->
              Bbng_obs.Profile.with_root base (worker (d + 1))))
    in
    Bbng_obs.Counter.add c_spawned (k - 1);
    worker 0 ();
    List.iter Domain.join spawned;
    not (Atomic.get failed)
  end

let map ?domains ~n f =
  let k = min n (match domains with Some d -> max 1 d | None -> recommended_domains ()) in
  if k <= 1 || n <= 1 then
    Array.init n (fun i ->
        Bbng_obs.Metrics.incr m_tasks;
        f i)
  else begin
    let results = Array.make n None in
    let worker d () =
      let i = ref d in
      while !i < n do
        Bbng_obs.Metrics.incr m_tasks;
        results.(!i) <- Some (f !i);
        i := !i + k
      done
    in
    (* spawned workers root their span paths under the caller's current
       call path, so a parallel fan-out's spans fold into the same
       flamegraph branch as the single-domain run's *)
    let base = Bbng_obs.Profile.current_path () in
    let spawned =
      List.init (k - 1) (fun d ->
          Domain.spawn (fun () ->
              Bbng_obs.Profile.with_root base (worker (d + 1))))
    in
    Bbng_obs.Counter.add c_spawned (k - 1);
    worker 0 ();
    List.iter Domain.join spawned;
    Array.map
      (function Some r -> r | None -> assert false (* every index visited *))
      results
  end

(* Dynamic (work-stealing-ish) scheduling: indices are claimed one at
   a time from a shared atomic counter, so wildly heterogeneous task
   costs — census shards whose equilibrium density varies across the
   profile space — balance without any cost model.  Block-cyclic [map]
   stays the right tool for near-uniform per-index work (per-player
   certification): it touches the counter cache line not at all. *)
let map_dynamic ?domains ~n f =
  let k = min n (match domains with Some d -> max 1 d | None -> recommended_domains ()) in
  if k <= 1 || n <= 1 then
    Array.init n (fun i ->
        Bbng_obs.Metrics.incr m_tasks;
        f i)
  else begin
    let next = Atomic.make 0 in
    let results = Array.make n None in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        Bbng_obs.Metrics.incr m_tasks;
        results.(i) <- Some (f i);
        worker ()
      end
    in
    (* spawned workers root their span paths under the caller's current
       call path, so a parallel fan-out's spans fold into the same
       flamegraph branch as the single-domain run's *)
    let base = Bbng_obs.Profile.current_path () in
    let spawned =
      List.init (k - 1) (fun _ ->
          Domain.spawn (fun () -> Bbng_obs.Profile.with_root base worker))
    in
    Bbng_obs.Counter.add c_spawned (k - 1);
    worker ();
    List.iter Domain.join spawned;
    Array.map
      (function Some r -> r | None -> assert false (* every index claimed *))
      results
  end

let find_map ?domains ~n f =
  let k = min n (match domains with Some d -> max 1 d | None -> recommended_domains ()) in
  if k <= 1 || n <= 1 then begin
    let rec go i =
      if i >= n then None
      else begin
        Bbng_obs.Metrics.incr m_tasks;
        match f i with Some _ as r -> r | None -> go (i + 1)
      end
    in
    go 0
  end
  else begin
    let result = Atomic.make None in
    let worker d () =
      let i = ref d in
      while Atomic.get result = None && !i < n do
        Bbng_obs.Metrics.incr m_tasks;
        (match f !i with
        | Some _ as r ->
            (* keep the first writer's answer *)
            ignore (Atomic.compare_and_set result None r)
        | None -> ());
        i := !i + k
      done;
      Bbng_obs.Counter.add c_abandoned (abandoned_by ~n ~k !i)
    in
    (* spawned workers root their span paths under the caller's current
       call path, so a parallel fan-out's spans fold into the same
       flamegraph branch as the single-domain run's *)
    let base = Bbng_obs.Profile.current_path () in
    let spawned =
      List.init (k - 1) (fun d ->
          Domain.spawn (fun () ->
              Bbng_obs.Profile.with_root base (worker (d + 1))))
    in
    Bbng_obs.Counter.add c_spawned (k - 1);
    worker 0 ();
    List.iter Domain.join spawned;
    Atomic.get result
  end
