module Bfs = Bbng_graph.Bfs

let c_contexts = Bbng_obs.Counter.make "deveval.contexts"
let c_evals = Bbng_obs.Counter.make "deveval.incremental_evals"

type t = {
  version : Cost.version;
  player : int;
  n : int;
  static_adj : int array array;  (* all arcs except the player's owned ones *)
  own : int array;               (* the player's strategy in the profile *)
  (* reusable scratch: [seen.(v) = stamp] marks validity of [dist.(v)] *)
  mutable stamp : int;
  seen : int array;
  dist : int array;
  queue : int array;
  comp_seen : int array;         (* second stamp space for kappa *)
  (* cooperative cancellation: each evaluation checkpoints the token on
     entry and charges the reached-vertex count after, so a deadline or
     work limit stops a candidate scan between evaluations (a single
     eval is O(n + m) and bounded).  Mutable so a context can be warmed
     up unlimited and budgeted afterwards. *)
  mutable budget : Bbng_obs.Budgeted.t;
}

let make ?(budget = Bbng_obs.Budgeted.unlimited) version profile ~player =
  Bbng_obs.Counter.bump c_contexts;
  let n = Strategy.n profile in
  if player < 0 || player >= n then invalid_arg "Deviation_eval.make: bad player";
  let deg = Array.make n 0 in
  let bump u v =
    deg.(u) <- deg.(u) + 1;
    deg.(v) <- deg.(v) + 1
  in
  for i = 0 to n - 1 do
    if i <> player then Array.iter (fun j -> bump i j) (Strategy.strategy profile i)
  done;
  let static_adj = Array.map (fun d -> Array.make d 0) deg in
  let fill = Array.make n 0 in
  let add u v =
    static_adj.(u).(fill.(u)) <- v;
    fill.(u) <- fill.(u) + 1
  in
  for i = 0 to n - 1 do
    if i <> player then
      Array.iter
        (fun j ->
          add i j;
          add j i)
        (Strategy.strategy profile i)
  done;
  {
    version;
    player;
    n;
    static_adj;
    own = Array.copy (Strategy.strategy profile player);
    stamp = 0;
    seen = Array.make n 0;
    dist = Array.make n 0;
    queue = Array.make (max n 1) 0;
    comp_seen = Array.make n 0;
    budget;
  }

let player t = t.player
let version t = t.version
let budget t = t.budget
let set_budget t budget = t.budget <- budget

(* Count connected components among vertices not reached by the last
   BFS, walking only static adjacency (correct: no static edge joins a
   reached and an unreached vertex — see the interface comment). *)
let unreached_components t =
  let comps = ref 0 in
  let stamp = t.stamp in
  for start = 0 to t.n - 1 do
    if t.seen.(start) <> stamp && t.comp_seen.(start) <> stamp then begin
      incr comps;
      (* small DFS with the shared queue as a stack *)
      let top = ref 1 in
      t.queue.(0) <- start;
      t.comp_seen.(start) <- stamp;
      while !top > 0 do
        decr top;
        let u = t.queue.(!top) in
        Array.iter
          (fun v ->
            if t.seen.(v) <> stamp && t.comp_seen.(v) <> stamp then begin
              t.comp_seen.(v) <- stamp;
              t.queue.(!top) <- v;
              incr top
            end)
          t.static_adj.(u)
      done
    end
  done;
  !comps

let cost t targets =
  Bbng_obs.Budgeted.checkpoint t.budget;
  Bbng_obs.Counter.bump c_evals;
  Array.iter
    (fun v ->
      if v < 0 || v >= t.n then invalid_arg "Deviation_eval.cost: target out of range";
      if v = t.player then invalid_arg "Deviation_eval.cost: self target")
    targets;
  t.stamp <- t.stamp + 1;
  let stamp = t.stamp in
  let head = ref 0 and tail = ref 0 in
  let visit v d =
    if t.seen.(v) <> stamp then begin
      t.seen.(v) <- stamp;
      t.dist.(v) <- d;
      t.queue.(!tail) <- v;
      incr tail
    end
  in
  visit t.player 0;
  (* the player's tentative arcs only matter as first steps *)
  Array.iter (fun v -> visit v 1) targets;
  Array.iter (fun v -> visit v 1) t.static_adj.(t.player);
  (* skip the player itself in the queue: position 0 *)
  head := 0;
  while !head < !tail do
    let u = t.queue.(!head) in
    incr head;
    if u <> t.player then begin
      let du = t.dist.(u) in
      Array.iter (fun v -> visit v (du + 1)) t.static_adj.(u)
    end
  done;
  let reached = !tail in
  Bbng_obs.Budgeted.spend t.budget reached;
  let inf = t.n * t.n in
  match t.version with
  | Cost.Sum ->
      let acc = ref 0 in
      for i = 0 to reached - 1 do
        acc := !acc + t.dist.(t.queue.(i))
      done;
      !acc + ((t.n - reached) * inf)
  | Cost.Max ->
      if reached = t.n then begin
        let acc = ref 0 in
        for i = 0 to reached - 1 do
          if t.dist.(t.queue.(i)) > !acc then acc := t.dist.(t.queue.(i))
        done;
        !acc
      end
      else begin
        (* kappa = 1 (player's component) + components among unreached *)
        let kappa = 1 + unreached_components t in
        inf + ((kappa - 1) * inf)
      end

let current_cost t = cost t t.own
