module Bfs = Bbng_graph.Bfs

let c_contexts = Bbng_obs.Counter.make "deveval.contexts"
let c_evals = Bbng_obs.Counter.make "deveval.incremental_evals"
let c_rows_built = Bbng_obs.Counter.make "deveval.rows_built"
let c_rows_evicted = Bbng_obs.Counter.make "deveval.rows_evicted"
let c_row_hits = Bbng_obs.Counter.make "deveval.row_hits"

type engine = Bfs_overlay | Rows

let engine_name = function Bfs_overlay -> "bfs" | Rows -> "rows"

let engine_of_name = function
  | "bfs" -> Some Bfs_overlay
  | "rows" -> Some Rows
  | _ -> None

type choice = Fixed of engine | Auto

let choice_name = function Fixed e -> engine_name e | Auto -> "auto"

let choice_of_name = function
  | "auto" -> Some Auto
  | s -> Option.map (fun e -> Fixed e) (engine_of_name s)

(* Process-wide default, set once by the CLI/bench --eval-engine flag
   before any context exists; contexts resolve it at [make] time, so
   domains spawned later inherit it without signature churn. *)
let default = Atomic.make Auto
let set_default_choice c = Atomic.set default c
let default_choice () = Atomic.get default

(* Distance rows of the player-deleted static graph, built lazily one
   BFS at a time.  [rows.(v)] caches dist_{G∖player}(v, ·); [base] is
   the single multi-source row min over staticN(player).  FIFO eviction
   under [cap] keeps the worst case at O(cap · n) ints. *)
type rows_state = {
  cap : int;
  rows : int array option array;
  order : int Queue.t;          (* build order of live cached rows *)
  mutable live : int;
  mutable base : int array option;
}

type t = {
  version : Cost.version;
  player : int;
  n : int;
  engine : engine;
  (* all arcs except the player's owned ones, in flat CSR shape: row u
     is static_targets.[static_offs.(u) .. static_offs.(u+1)).  The
     BFS and min-combine hot loops below are straight int-array scans
     over these two vectors — no per-vertex array chase, no closure. *)
  static_offs : int array;       (* n + 1 *)
  static_targets : int array;
  own : int array;               (* the player's strategy in the profile *)
  rows_state : rows_state option;  (* Some iff engine = Rows *)
  (* reusable scratch: [seen.(v) = stamp] marks validity of [dist.(v)] *)
  mutable stamp : int;
  seen : int array;
  dist : int array;
  queue : int array;
  comp_seen : int array;         (* second stamp space for kappa *)
  (* cooperative cancellation: each evaluation checkpoints the token on
     entry and charges its work after, so a deadline or work limit
     stops a candidate scan between evaluations (a single eval is
     bounded).  Mutable so a context can be warmed up unlimited and
     budgeted afterwards. *)
  mutable budget : Bbng_obs.Budgeted.t;
}

(* Rows beat the overlay BFS once a candidate scan re-visits targets,
   which C(n-1, b) enumeration does heavily for b >= 2; at b <= 1 every
   row is used once and the overlay's single BFS is already optimal. *)
let resolve_choice choice ~budget_size =
  match choice with
  | Fixed e -> e
  | Auto -> if budget_size >= 2 then Rows else Bfs_overlay

let make ?(budget = Bbng_obs.Budgeted.unlimited) ?engine ?row_cache_cap version
    profile ~player =
  Bbng_obs.Counter.bump c_contexts;
  let n = Strategy.n profile in
  if player < 0 || player >= n then invalid_arg "Deviation_eval.make: bad player";
  let deg = Array.make n 0 in
  let bump u v =
    deg.(u) <- deg.(u) + 1;
    deg.(v) <- deg.(v) + 1
  in
  for i = 0 to n - 1 do
    if i <> player then Array.iter (fun j -> bump i j) (Strategy.strategy profile i)
  done;
  let static_offs = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    static_offs.(i + 1) <- static_offs.(i) + deg.(i)
  done;
  let static_targets = Array.make (max static_offs.(n) 1) 0 in
  let fill = Array.sub static_offs 0 n in
  let add u v =
    static_targets.(fill.(u)) <- v;
    fill.(u) <- fill.(u) + 1
  in
  for i = 0 to n - 1 do
    if i <> player then
      Array.iter
        (fun j ->
          add i j;
          add j i)
        (Strategy.strategy profile i)
  done;
  let own = Array.copy (Strategy.strategy profile player) in
  let choice =
    match engine with Some c -> c | None -> Atomic.get default
  in
  let engine = resolve_choice choice ~budget_size:(Array.length own) in
  let rows_state =
    match engine with
    | Bfs_overlay -> None
    | Rows ->
        (* default cap: whole-row cache up to ~8M ints (64 MB), never
           below 16 rows — at paper scales this never evicts *)
        let cap =
          match row_cache_cap with
          | Some c -> max 1 c
          | None -> max 16 (8_388_608 / max n 1)
        in
        Some
          {
            cap;
            rows = Array.make n None;
            order = Queue.create ();
            live = 0;
            base = None;
          }
  in
  {
    version;
    player;
    n;
    engine;
    static_offs;
    static_targets;
    own;
    rows_state;
    stamp = 0;
    seen = Array.make n 0;
    dist = Array.make n 0;
    queue = Array.make (max n 1) 0;
    comp_seen = Array.make n 0;
    budget;
  }

let player t = t.player
let version t = t.version
let engine t = t.engine
let budget t = t.budget
let set_budget t budget = t.budget <- budget

(* Count connected components among vertices not reached by the last
   evaluation, walking only static adjacency (correct: no static edge
   joins a reached and an unreached vertex — see the interface
   comment).  Both engines mark their reach set into [seen] under the
   current [stamp] before calling this. *)
let unreached_components t =
  let comps = ref 0 in
  let stamp = t.stamp in
  for start = 0 to t.n - 1 do
    if t.seen.(start) <> stamp && t.comp_seen.(start) <> stamp then begin
      incr comps;
      (* small DFS with the shared queue as a stack *)
      let top = ref 1 in
      t.queue.(0) <- start;
      t.comp_seen.(start) <- stamp;
      while !top > 0 do
        decr top;
        let u = t.queue.(!top) in
        for k = t.static_offs.(u) to t.static_offs.(u + 1) - 1 do
          let v = t.static_targets.(k) in
          if t.seen.(v) <> stamp && t.comp_seen.(v) <> stamp then begin
            t.comp_seen.(v) <- stamp;
            t.queue.(!top) <- v;
            incr top
          end
        done
      done
    end
  done;
  !comps

let validate_targets t targets =
  let b = Array.length targets in
  for i = 0 to b - 1 do
    let v = targets.(i) in
    if v < 0 || v >= t.n then invalid_arg "Deviation_eval.cost: target out of range";
    if v = t.player then invalid_arg "Deviation_eval.cost: self target";
    (* a duplicate under-spends the budget while pricing as if legal;
       b is tiny, so the quadratic check is cheaper than sorting *)
    for j = i + 1 to b - 1 do
      if targets.(j) = v then invalid_arg "Deviation_eval.cost: duplicate target"
    done
  done

(* --- overlay engine: one fresh BFS per candidate --- *)

let overlay_cost t targets =
  t.stamp <- t.stamp + 1;
  let stamp = t.stamp in
  let offs = t.static_offs and adj = t.static_targets in
  let head = ref 0 and tail = ref 0 in
  let visit v d =
    if t.seen.(v) <> stamp then begin
      t.seen.(v) <- stamp;
      t.dist.(v) <- d;
      t.queue.(!tail) <- v;
      incr tail
    end
  in
  visit t.player 0;
  (* the player's tentative arcs only matter as first steps *)
  Array.iter (fun v -> visit v 1) targets;
  for k = offs.(t.player) to offs.(t.player + 1) - 1 do
    visit adj.(k) 1
  done;
  (* skip the player itself in the queue: position 0 *)
  head := 0;
  while !head < !tail do
    let u = t.queue.(!head) in
    incr head;
    if u <> t.player then begin
      let du1 = t.dist.(u) + 1 in
      for k = offs.(u) to offs.(u + 1) - 1 do
        let v = adj.(k) in
        if t.seen.(v) <> stamp then begin
          t.seen.(v) <- stamp;
          t.dist.(v) <- du1;
          t.queue.(!tail) <- v;
          incr tail
        end
      done
    end
  done;
  let reached = !tail in
  Bbng_obs.Budgeted.spend t.budget reached;
  let inf = t.n * t.n in
  match t.version with
  | Cost.Sum ->
      let acc = ref 0 in
      for i = 0 to reached - 1 do
        acc := !acc + t.dist.(t.queue.(i))
      done;
      !acc + ((t.n - reached) * inf)
  | Cost.Max ->
      if reached = t.n then begin
        let acc = ref 0 in
        for i = 0 to reached - 1 do
          if t.dist.(t.queue.(i)) > !acc then acc := t.dist.(t.queue.(i))
        done;
        !acc
      end
      else begin
        (* kappa = 1 (player's component) + components among unreached *)
        let kappa = 1 + unreached_components t in
        inf + ((kappa - 1) * inf)
      end

(* --- rows engine: per-target distance rows, O(b·n) combine --- *)

(* One BFS of the player-deleted static graph from the seeds already
   placed in [t.queue]; the row maps every vertex to its distance from
   the nearest seed (the sentinel n² elsewhere, including at the
   player).  The cache is only updated after the BFS completes, so an
   exception (budget expiry, an injected fault) or a SIGKILL mid-build
   never leaves a torn row. *)
let finish_row t row tail0 =
  let inf = t.n * t.n in
  let offs = t.static_offs and adj = t.static_targets in
  let head = ref 0 and tail = ref tail0 in
  while !head < !tail do
    let u = t.queue.(!head) in
    incr head;
    let du1 = row.(u) + 1 in
    for k = offs.(u) to offs.(u + 1) - 1 do
      let v = adj.(k) in
      if v <> t.player && row.(v) = inf then begin
        row.(v) <- du1;
        t.queue.(!tail) <- v;
        incr tail
      end
    done
  done;
  Bbng_obs.Budgeted.spend t.budget !tail;
  row

let build_row_single t target =
  Bbng_obs.Fault.hit "deveval.row_build";
  Bbng_obs.Counter.bump c_rows_built;
  let row = Array.make t.n (t.n * t.n) in
  row.(target) <- 0;
  t.queue.(0) <- target;
  finish_row t row 1

(* seeded by the player's static neighbourhood (duplicates merged —
   a brace contributes the same endpoint twice) *)
let build_base_row t =
  Bbng_obs.Fault.hit "deveval.row_build";
  Bbng_obs.Counter.bump c_rows_built;
  let inf = t.n * t.n in
  let row = Array.make t.n inf in
  let tail = ref 0 in
  for k = t.static_offs.(t.player) to t.static_offs.(t.player + 1) - 1 do
    let s = t.static_targets.(k) in
    if row.(s) = inf then begin
      row.(s) <- 0;
      t.queue.(!tail) <- s;
      incr tail
    end
  done;
  finish_row t row !tail

let base_row t rs =
  match rs.base with
  | Some row -> row
  | None ->
      let row = build_base_row t in
      rs.base <- Some row;
      row

let miss_row t rs target =
  let row = build_row_single t target in
  if rs.live >= rs.cap then begin
    match Queue.take_opt rs.order with
    | Some victim ->
        rs.rows.(victim) <- None;
        rs.live <- rs.live - 1;
        Bbng_obs.Counter.bump c_rows_evicted
    | None -> ()
  end;
  rs.rows.(target) <- Some row;
  Queue.push target rs.order;
  rs.live <- rs.live + 1;
  row

(* The (b+1)-way min-combine is the per-candidate hot path — a full
   exhaustive scan runs it C(n-1, b) times — so the ubiquitous b <= 2
   cases are unrolled: no trows allocation and no inner k-loop.  Two
   more hot-path economies: every row holds the sentinel at the player
   (build_row never relaxes it), so the combine needs no per-vertex
   player test — the player falls out of the [m < inf] branch and is
   pre-counted in [reached]; and cache-hit accounting is batched into
   one atomic [Counter.add] per evaluation instead of one bump per
   target.  The reach set is not marked here either: only the MAX
   disconnection walk needs the mark, and that rare path re-derives it
   from the cache-hot rows.  Rows are held by reference throughout: a
   cache eviction while gathering the next row cannot invalidate one
   already in hand. *)
let rows_cost t rs targets =
  let inf = t.n * t.n in
  let base = base_row t rs in
  let n = t.n in
  let b = Array.length targets in
  let reached = ref 1 in
  let sum = ref 0 and mx = ref 0 in
  let hits = ref 0 in
  let row tg =
    match rs.rows.(tg) with
    | Some r ->
        incr hits;
        r
    | None -> miss_row t rs tg
  in
  (match b with
  | 0 ->
      for v = 0 to n - 1 do
        let m = base.(v) in
        if m < inf then begin
          let d = m + 1 in
          incr reached;
          sum := !sum + d;
          if d > !mx then mx := d
        end
      done
  | 1 ->
      let r0 =
        match rs.rows.(targets.(0)) with
        | Some r ->
            incr hits;
            r
        | None -> miss_row t rs targets.(0)
      in
      for v = 0 to n - 1 do
        let m = base.(v) in
        let d0 = r0.(v) in
        let m = if d0 < m then d0 else m in
        if m < inf then begin
          let d = m + 1 in
          incr reached;
          sum := !sum + d;
          if d > !mx then mx := d
        end
      done
  | 2 ->
      let r0 =
        match rs.rows.(targets.(0)) with
        | Some r ->
            incr hits;
            r
        | None -> miss_row t rs targets.(0)
      in
      let r1 =
        match rs.rows.(targets.(1)) with
        | Some r ->
            incr hits;
            r
        | None -> miss_row t rs targets.(1)
      in
      for v = 0 to n - 1 do
        let m = base.(v) in
        let d0 = r0.(v) in
        let m = if d0 < m then d0 else m in
        let d1 = r1.(v) in
        let m = if d1 < m then d1 else m in
        if m < inf then begin
          let d = m + 1 in
          incr reached;
          sum := !sum + d;
          if d > !mx then mx := d
        end
      done
  | _ ->
      let trows = Array.map row targets in
      for v = 0 to n - 1 do
        let m = ref base.(v) in
        for k = 0 to b - 1 do
          let d = trows.(k).(v) in
          if d < !m then m := d
        done;
        if !m < inf then begin
          let d = !m + 1 in
          incr reached;
          sum := !sum + d;
          if d > !mx then mx := d
        end
      done);
  Bbng_obs.Budgeted.spend t.budget ((b + 1) * n);
  let result =
    match t.version with
    | Cost.Sum -> !sum + ((n - !reached) * inf)
    | Cost.Max ->
        if !reached = n then !mx
        else begin
          (* disconnected under MAX: mark the reach set for the
             component walk.  Re-gathering the rows is a cache hit
             (they were just combined; a rebuild after an eviction is
             deterministic, so the mark equals the combine's reach set
             either way). *)
          let trows = Array.map row targets in
          t.stamp <- t.stamp + 1;
          let stamp = t.stamp in
          t.seen.(t.player) <- stamp;
          for v = 0 to n - 1 do
            let m = ref base.(v) in
            for k = 0 to b - 1 do
              let d = trows.(k).(v) in
              if d < !m then m := d
            done;
            if !m < inf then t.seen.(v) <- stamp
          done;
          let kappa = 1 + unreached_components t in
          inf + ((kappa - 1) * inf)
        end
  in
  if !hits > 0 then Bbng_obs.Counter.add c_row_hits !hits;
  result

let cost t targets =
  Bbng_obs.Budgeted.checkpoint t.budget;
  Bbng_obs.Counter.bump c_evals;
  validate_targets t targets;
  match t.rows_state with
  | None -> overlay_cost t targets
  | Some rs -> rows_cost t rs targets

let current_cost t = cost t t.own
