(** Price of anarchy / stability machinery.

    Both prices divide an equilibrium diameter by the minimum diameter
    over {e all} realizations of the instance (the OPT).  For connectable
    instances OPT is between 1 and 4 (Theorem 2.3's constructions have
    diameter at most 4), so the paper's Table 1 is really about
    equilibrium diameters; this module still computes OPT honestly:
    exactly by enumeration on small instances, by sandwich bounds
    otherwise. *)

val canonical_low_diameter_realization : Budget.t -> Strategy.t
(** A connected realization with diameter <= 4 for any connectable
    instance with [n >= 2] (diameter <= 2 when a max-budget player can
    cover everyone): the generic OPT upper-bound witness.  For
    subcritical instances the result is just some valid profile (its
    diameter is [n^2] like every other realization's).

    Construction: every positive-budget player spends one arc on a
    maximum-budget hub [h]; the remaining arcs of [h] and of the other
    positive players cover the zero-budget players (σ >= n-1 makes this
    exactly possible); leftovers are dumped on arbitrary fresh targets. *)

val opt_diameter_exact : ?max_profiles:int -> Budget.t -> int option
(** Exact OPT by profile enumeration; [None] if the instance has more
    than [max_profiles] (default [2_000_000]) profiles. *)

val opt_diameter_bounds : Budget.t -> int * int
(** [(lo, hi)] with [lo <= OPT <= hi]:
    - subcritical: [(n^2, n^2)];
    - [n = 1]: [(0, 0)];
    - connectable: [lo = 1] if [sigma >= n(n-1)/2] else [2]; [hi] is the
      measured diameter of {!canonical_low_diameter_realization}. *)

type ratio = { num : int; den : int }
(** An exact price: equilibrium diameter over OPT diameter. *)

val ratio_to_float : ratio -> float
val pp_ratio : Format.formatter -> ratio -> unit

type prices = {
  anarchy : ratio;    (** worst equilibrium diameter / OPT *)
  stability : ratio;  (** best equilibrium diameter / OPT *)
}

val exact_prices : ?max_profiles:int -> Game.t -> prices option
(** Exact PoA and PoS by full enumeration of profiles and equilibria;
    [None] when the instance is too large or (impossibly, per
    Theorem 2.3) has no equilibrium. *)

val anarchy_lower_bound : equilibrium_diameter:int -> Budget.t -> ratio
(** The PoA lower bound certified by one known equilibrium: its diameter
    over the OPT {e upper} bound. *)

(** {1 Welfare-based prices (sensitivity ablation)}

    The paper takes the social cost to be the diameter; the older
    Fabrikant et al. line uses the {e sum of all players' costs}.  The
    welfare variants below recompute both prices under that alternative
    on small instances, so the experiments can ask how much of Table 1's
    story depends on the choice. *)

val exact_welfare_prices : ?max_profiles:int -> Game.t -> prices option
(** PoA/PoS with social cost = {!Game.social_welfare}: worst (resp.
    best) equilibrium welfare over the minimum welfare across all
    profiles.  Same enumeration limits as {!exact_prices}. *)
