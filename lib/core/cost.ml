module Undirected = Bbng_graph.Undirected
module Bfs = Bbng_graph.Bfs
module Components = Bbng_graph.Components

type version = Max | Sum

let version_name = function Max -> "MAX" | Sum -> "SUM"
let all_versions = [ Max; Sum ]

let cinf ~n = n * n

let vertex_cost_given version ~n ~kappa ~dist =
  let inf = cinf ~n in
  match version with
  | Sum ->
      let acc = ref 0 in
      Array.iter (fun d -> acc := !acc + if d = Bfs.unreachable then inf else d) dist;
      !acc
  | Max ->
      (* Local diameter is n^2 whenever the graph is disconnected (every
         vertex then has some vertex at distance Cinf), plus the
         (kappa - 1) n^2 incentive term. *)
      if kappa > 1 then inf + ((kappa - 1) * inf)
      else Array.fold_left max 0 dist

let vertex_cost version g u =
  let n = Undirected.n g in
  let kappa = match version with Sum -> 1 | Max -> Components.count g in
  vertex_cost_given version ~n ~kappa ~dist:(Bfs.distances g u)

let profile_costs version g =
  let n = Undirected.n g in
  let kappa = match version with Sum -> 1 | Max -> Components.count g in
  Array.init n (fun u ->
      vertex_cost_given version ~n ~kappa ~dist:(Bfs.distances g u))

let social_cost g =
  match Bbng_graph.Distances.diameter g with
  | Some d -> d
  | None -> cinf ~n:(Undirected.n g)

let cost_floor version ~n ~budget ~in_degree =
  let p = min (budget + in_degree) (n - 1) in
  match version with
  | Max -> if n <= 1 then 0 else if p >= n - 1 then 1 else 2
  | Sum -> p + (2 * (n - 1 - p))
