(** Multicore helpers (OCaml 5 domains).

    Equilibrium certification is embarrassingly parallel across players
    — each player's best-response check touches only immutable data —
    so the expensive certifications (Figure 1, big tripods, shift
    graphs) can fan out over domains.  No dependency beyond the
    standard library: plain [Domain.spawn] with block scheduling and an
    atomic early-exit flag.

    Keep the task grain coarse: spawning a domain costs far more than a
    BFS, so these helpers are used at the per-player level, not inside
    the subset enumeration.

    Observability: spawns bump the [parallel.domains_spawned] counter,
    and every index a worker skips because the early-exit flag tripped
    bumps [parallel.chunks_abandoned] — so "early exit abandons work"
    is a measurable claim, not a doc promise (see [test_parallel]). *)

val recommended_domains : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)]: leave one core
    for the caller. *)

val for_all : ?domains:int -> n:int -> (int -> bool) -> bool
(** [for_all ~n f] is [f 0 && ... && f (n-1)], evaluated on up to
    [domains] domains (default {!recommended_domains}) with early exit:
    once any index returns [false], remaining work is abandoned at the
    next index boundary.  [f] must be safe to run concurrently (pure,
    or confined to its own mutable state).  Falls back to a sequential
    scan when [domains <= 1] or [n <= 1]. *)

val map : ?domains:int -> n:int -> (int -> 'a) -> 'a array
(** [map ~n f] is [[| f 0; ...; f (n-1) |]] with the indices fanned out
    block-cyclically over domains.  No early exit: every index is
    evaluated — this is what certificate production uses, where the
    whole point is keeping every player's evidence (deterministic
    output, unlike {!find_map}). *)

val map_dynamic : ?domains:int -> n:int -> (int -> 'a) -> 'a array
(** {!map} with dynamic scheduling: indices are claimed one at a time
    from a shared atomic counter, so heterogeneous per-index costs
    (census shards of very different equilibrium density) balance
    across domains instead of serializing behind the unluckiest block.
    Same determinism as {!map} — every index is evaluated and lands in
    its slot; only the execution interleaving differs. *)

val find_map : ?domains:int -> n:int -> (int -> 'a option) -> 'a option
(** First-ish [Some] produced by any index, or [None].  "First-ish":
    with several domains the winner is the first to {e finish}, not
    necessarily the smallest index — callers needing determinism should
    use one domain.  Early exit as in {!for_all}. *)
