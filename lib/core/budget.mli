(** Budget vectors and instance classification.

    A [(b_1, ..., b_n)]-BG instance is determined by its budget vector:
    player [i] must own exactly [b_i] arcs, [0 <= b_i < n].  The paper's
    bounds (Table 1) are stated per instance class, which this module
    makes first-class. *)

type t
(** An immutable budget vector. *)

val of_array : int array -> t
(** @raise Invalid_argument unless [0 <= b_i < n] for all [i] and
    [n >= 1]. *)

val of_list : int list -> t

val uniform : n:int -> budget:int -> t
(** All players get [budget]; [unit_budgets n = uniform ~n ~budget:1]. *)

val unit_budgets : int -> t

val n : t -> int
val get : t -> int -> int
val to_array : t -> int array
(** A fresh copy. *)

val total : t -> int
(** [sigma = b_1 + ... + b_n]. *)

val min_budget : t -> int
val max_budget : t -> int

(** {1 Instance classes of Table 1} *)

val is_tree_instance : t -> bool
(** [sigma = n - 1]: the Tree-BG class of Section 3. *)

val is_unit : t -> bool
(** All budgets exactly 1 (Section 4). *)

val all_positive : t -> bool
(** All budgets >= 1 (Section 5). *)

val connectable : t -> bool
(** [sigma >= n - 1]: some realization is connected (Lemma 3.1 then
    forces every equilibrium to be connected). *)

type instance_class =
  | Subcritical    (** [sigma < n - 1]: every realization disconnected *)
  | Tree           (** [sigma = n - 1] *)
  | Unit           (** all budgets = 1 (implies [sigma = n], not Tree) *)
  | Positive       (** all budgets >= 1, not Unit *)
  | General        (** [sigma >= n - 1] with some zero budget *)

val classify : t -> instance_class
(** The most specific Table 1 row the instance falls in.  [Tree] wins
    over [Positive]/[General] when [sigma = n - 1]; [Unit] wins over
    [Positive]. *)

val class_name : instance_class -> string

val pp : Format.formatter -> t -> unit

(** {1 Workload helpers} *)

val random_partition : Random.State.t -> n:int -> total:int -> t
(** A random budget vector with the given total: [total] units thrown
    into [n] urns uniformly, then clamped below [n] by reassigning
    overflow (possible whenever [total <= n * (n - 1)]).
    @raise Invalid_argument when no valid vector exists. *)

val random_powerlaw :
  Random.State.t -> n:int -> exponent:float -> max_budget:int -> t
(** Skewed budgets for realistic P2P workloads: each player draws from
    a discrete power law [P(b) ~ (b+1)^(-exponent)] over
    [0..max_budget].  Larger exponents mean more zero-budget players.
    @raise Invalid_argument if [max_budget >= n] or [max_budget < 0]. *)

val of_digraph : Bbng_graph.Digraph.t -> t
(** The budget vector realized by a digraph: [b_i] = out-degree of [i].
    Theorem 2.1's reduction builds game instances this way. *)
