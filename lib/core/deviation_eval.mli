(** Fast repeated evaluation of one player's deviations.

    Exact best-response search evaluates thousands of candidate
    strategies of a single player against a {e fixed} rest-of-profile.
    The generic route ({!Game.deviation_cost}) rebuilds the whole
    digraph and its undirected view per candidate; this module builds
    the static part — every arc {e not} owned by the deviating player,
    as undirected adjacency — once, and prices candidates with one of
    two exact engines.

    Both rest on the one-arc shortest-path lemma: a shortest path from
    the player never revisits the player, so it uses {e at most one} of
    the player's arcs, necessarily as its first edge.  Hence

    {v dist_i(v) = min over t in (targets ∪ staticN(i)) of
                     1 + dist_{G∖i}(t, v) v}

    where [G∖i] is the player-deleted static graph — a quantity that
    does {e not} depend on the candidate at all.

    - [Bfs_overlay] runs one fresh BFS per candidate, overlaying the
      player's tentative arcs as first steps: O(n + m) per candidate.
    - [Rows] precomputes one BFS row per first-hop vertex of [G∖i]
      (lazily, cached under a configurable cap with eviction counters),
      plus a single multi-source row for the static neighbors; each
      candidate is then an O(b·n) min-combine over b+1 rows.  Over a
      C(n-1, b) exhaustive scan this drops the total from
      O(C(n-1,b)·(n+m)) to O(n·(n+m) + C(n-1,b)·b·n).

    In both engines the vertices an evaluation misses induce the same
    components as in the static graph (none of their edges involve the
    player), so the MAX version's [kappa] is recovered without
    rebuilding anything.

    The observable behaviour of both engines is {e identical} to the
    generic route (qcheck properties in the test suite pin
    rows ≡ overlay ≡ generic); the win is the per-candidate constant. *)

type t

type engine = Bfs_overlay | Rows
(** The two exact pricing engines (see the module preamble). *)

type choice = Fixed of engine | Auto
(** Engine selection: [Auto] resolves per context to [Rows] when the
    player's budget is ≥ 2 (rows amortize only when candidates share
    first hops) and [Bfs_overlay] otherwise. *)

val engine_name : engine -> string
(** ["bfs"] or ["rows"] — the stable names certificates record. *)

val engine_of_name : string -> engine option

val choice_name : choice -> string
(** ["bfs"], ["rows"] or ["auto"]. *)

val choice_of_name : string -> choice option

val set_default_choice : choice -> unit
(** Process-wide default used when {!make} gets no [?engine]; set once
    by the [--eval-engine] CLI/bench flag.  Contexts resolve it at
    {!make} time, so parallel domains spawned later inherit it. *)

val default_choice : unit -> choice

val make :
  ?budget:Bbng_obs.Budgeted.t ->
  ?engine:choice ->
  ?row_cache_cap:int ->
  Cost.version ->
  Strategy.t ->
  player:int ->
  t
(** Captures the fixed part.  O(n + m).  [?budget] (default unlimited)
    is the cancellation token every subsequent {!cost} call honours.
    [?engine] overrides the process default ({!set_default_choice});
    [?row_cache_cap] bounds how many distance rows the [Rows] engine
    keeps live (FIFO eviction, clamped to ≥ 1; the default keeps the
    cache under ~64 MB and never evicts at paper scales).  Cache
    traffic is observable as the [deveval.rows_built] /
    [deveval.row_hits] / [deveval.rows_evicted] counters.

    A context is single-domain state: parallel certification gives each
    domain its own context, rows are never shared across domains. *)

val player : t -> int
val version : t -> Cost.version

val engine : t -> engine
(** The engine this context resolved to ([Auto] already applied). *)

val budget : t -> Bbng_obs.Budgeted.t

val set_budget : t -> Bbng_obs.Budgeted.t -> unit
(** Swap the cancellation token.  Used to warm a context up unlimited
    (so the cheap fallback tiers always have a current cost to compare
    against) and only then arm the caller's deadline for the expensive
    scan. *)

val cost : t -> int array -> int
(** [cost ctx targets] is the player's cost if it plays [targets]
    (sorted or not; duplicates, self-targets and out-of-range vertices
    are rejected).  Budget length is {e not} enforced here — the
    evaluator is also used on partial target sets by the greedy
    heuristic.

    Honours the context's cancellation token: checkpoints it on entry
    (raising {!Bbng_obs.Budgeted.Expired} once the token has tripped)
    and charges the work done after — the reached-vertex count per
    overlay BFS, the popped count per row build, [(b+1)·n] cells per
    combine — so interruption lands {e between} candidate evaluations,
    never mid-BFS, and the row cache is never left with a torn row
    (rows are installed only after their BFS completes; the
    [deveval.row_build] fault probe sits before the build for the
    crash-safety matrix).
    @raise Invalid_argument on a self-target, a duplicate target or an
    out-of-range vertex.
    @raise Bbng_obs.Budgeted.Expired once the token has expired. *)

val current_cost : t -> int
(** Cost of the player's actual strategy in the captured profile. *)
