(** Fast repeated evaluation of one player's deviations.

    Exact best-response search evaluates thousands of candidate
    strategies of a single player against a {e fixed} rest-of-profile.
    The generic route ({!Game.deviation_cost}) rebuilds the whole
    digraph and its undirected view per candidate; this module builds
    the static part — every arc {e not} owned by the deviating player,
    as undirected adjacency — once, and evaluates each candidate with a
    single BFS that overlays the player's tentative arcs:

    - a shortest path from the player never revisits the player, so an
      edge [player - t] can only ever be the {e first} step: BFS from
      the player with [neighbors(player) = static ∪ targets] and
      [neighbors(v) = static(v)] elsewhere is exact;
    - the vertices the BFS misses induce the same components as in the
      static graph (none of their edges involve the player), so the
      MAX version's [kappa] is recovered without rebuilding anything.

    The observable behaviour is {e identical} to the generic route
    (a qcheck property in the test suite pins this); the win is the
    per-candidate constant. *)

type t

val make :
  ?budget:Bbng_obs.Budgeted.t -> Cost.version -> Strategy.t -> player:int -> t
(** Captures the fixed part.  O(n + m).  [?budget] (default unlimited)
    is the cancellation token every subsequent {!cost} call honours. *)

val player : t -> int
val version : t -> Cost.version

val budget : t -> Bbng_obs.Budgeted.t

val set_budget : t -> Bbng_obs.Budgeted.t -> unit
(** Swap the cancellation token.  Used to warm a context up unlimited
    (so the cheap fallback tiers always have a current cost to compare
    against) and only then arm the caller's deadline for the expensive
    scan. *)

val cost : t -> int array -> int
(** [cost ctx targets] is the player's cost if it plays [targets]
    (sorted or not; duplicates and self-targets are rejected).  Budget
    length is {e not} enforced here — the evaluator is also used on
    partial target sets by the greedy heuristic.

    Honours the context's cancellation token: checkpoints it on entry
    (raising {!Bbng_obs.Budgeted.Expired} once the token has tripped)
    and charges the reached-vertex count as work after each evaluation,
    so interruption lands {e between} candidate evaluations, never
    mid-BFS.
    @raise Invalid_argument on a self-target or out-of-range vertex.
    @raise Bbng_obs.Budgeted.Expired once the token has expired. *)

val current_cost : t -> int
(** Cost of the player's actual strategy in the captured profile. *)
