(** Strategy profiles and their realizations.

    Player [i]'s strategy is a set [S_i] of exactly [b_i] other players;
    the profile [(S_1, ..., S_n)] realizes the digraph with an arc
    [i -> j] for every [j] in [S_i].  Profiles are stored as sorted
    duplicate-free arrays, so profile equality is structural equality
    (needed by the dynamics loop detector). *)

type t
(** An immutable, validated strategy profile. *)

val make : Budget.t -> int array array -> t
(** [make budgets s] validates that [s.(i)] has exactly [Budget.get
    budgets i] distinct targets, none equal to [i], all in range, and
    normalizes each to sorted order.
    @raise Invalid_argument otherwise. *)

val n : t -> int

val budgets : t -> Budget.t
(** The budget vector this profile is valid for. *)

val strategy : t -> int -> int array
(** Sorted target set of a player.  Not to be mutated. *)

val realize : t -> Bbng_graph.Digraph.t
(** The realization [G]: arc [i -> j] iff [j] is in [S_i].  O(n + m). *)

val underlying : t -> Bbng_graph.Undirected.t
(** [Undirected.of_digraph (realize p)], the metric object. *)

val with_strategy : t -> player:int -> targets:int array -> t
(** Functional single-player deviation; same validation as {!make}. *)

val of_digraph : Bbng_graph.Digraph.t -> t
(** Reads a profile off a realization (budgets = out-degrees). *)

val random : Random.State.t -> Budget.t -> t
(** Independent uniform strategies: each player picks a uniformly random
    [b_i]-subset of the others. *)

val relabel : t -> int array -> t
(** [relabel p pi] renames every player and every target through the
    permutation [pi] (player [i] becomes [pi.(i)]).  Game-theoretically
    this is an isomorphism of positions: costs, stability, and all
    structural properties are preserved (a property the test suite
    checks).
    @raise Invalid_argument if [pi] is not a permutation of [0..n-1]. *)

val equal : t -> t -> bool

val hash : t -> int
(** Structural hash, consistent with {!equal}; used by the dynamics
    loop detector. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** Compact one-line serialization ["b1:t,t,...|b2:..."]-style; inverse
    of {!of_string}. *)

val of_string : string -> t
(** @raise Invalid_argument on malformed input. *)
