let canonical_low_diameter_realization budgets =
  let n = Budget.n budgets in
  let b = Budget.to_array budgets in
  if not (Budget.connectable budgets) then begin
    (* Every realization is disconnected anyway; produce the
       lexicographically smallest valid profile. *)
    let strategies =
      Array.init n (fun i ->
          Array.init b.(i) (fun k -> if k < i then k else k + 1))
    in
    Strategy.make budgets strategies
  end
  else if n = 1 then Strategy.make budgets [| [||] |]
  else begin
    let hub = ref 0 in
    for i = 1 to n - 1 do
      if b.(i) > b.(!hub) then hub := i
    done;
    let hub = !hub in
    let targets = Array.make n [] in
    let remaining = Array.copy b in
    (* Star phase: positive players point at the hub. *)
    for i = 0 to n - 1 do
      if i <> hub && b.(i) > 0 then begin
        targets.(i) <- [ hub ];
        remaining.(i) <- remaining.(i) - 1
      end
    done;
    (* Cover phase: zero-budget players receive one arc each, spent by
       the hub first, then by the other positive players. *)
    let zeros = ref [] in
    for i = n - 1 downto 0 do
      if b.(i) = 0 then zeros := i :: !zeros
    done;
    let spenders =
      hub :: List.filter (fun i -> i <> hub && b.(i) > 0) (List.init n Fun.id)
    in
    List.iter
      (fun s ->
        while remaining.(s) > 0 && !zeros <> [] do
          match !zeros with
          | [] -> ()
          | z :: rest ->
              targets.(s) <- z :: targets.(s);
              remaining.(s) <- remaining.(s) - 1;
              zeros := rest
        done)
      spenders;
    assert (!zeros = []);
    (* Dump phase: leftover arcs go to the smallest fresh targets. *)
    List.iter
      (fun s ->
        let v = ref 0 in
        while remaining.(s) > 0 do
          if !v <> s && not (List.mem !v targets.(s)) then begin
            targets.(s) <- !v :: targets.(s);
            remaining.(s) <- remaining.(s) - 1
          end;
          incr v
        done)
      spenders;
    Strategy.make budgets (Array.map Array.of_list targets)
  end

let opt_diameter_exact ?(max_profiles = 2_000_000) budgets =
  if Equilibrium.count_profiles budgets > max_profiles then None
  else begin
    let best = ref max_int in
    Equilibrium.iter_profiles budgets (fun p ->
        let d = Cost.social_cost (Strategy.underlying p) in
        if d < !best then best := d);
    Some !best
  end

let opt_diameter_bounds budgets =
  let n = Budget.n budgets in
  if n = 1 then (0, 0)
  else if not (Budget.connectable budgets) then
    let c = Cost.cinf ~n in
    (c, c)
  else begin
    let sigma = Budget.total budgets in
    let lo = if sigma >= n * (n - 1) / 2 then 1 else 2 in
    let witness = canonical_low_diameter_realization budgets in
    let hi = Cost.social_cost (Strategy.underlying witness) in
    (lo, hi)
  end

type ratio = { num : int; den : int }

let ratio_to_float r = float_of_int r.num /. float_of_int r.den

let pp_ratio ppf r =
  if r.den = 1 then Format.pp_print_int ppf r.num
  else Format.fprintf ppf "%d/%d (%.3f)" r.num r.den (ratio_to_float r)

type prices = { anarchy : ratio; stability : ratio }

let exact_prices ?(max_profiles = 200_000) game =
  let budgets = Game.budgets game in
  if Equilibrium.count_profiles budgets > max_profiles then None
  else begin
    let opt = ref max_int in
    let ne_min = ref max_int and ne_max = ref min_int in
    Equilibrium.iter_profiles budgets (fun p ->
        let d = Cost.social_cost (Strategy.underlying p) in
        if d < !opt then opt := d;
        if Equilibrium.is_nash game p then begin
          if d < !ne_min then ne_min := d;
          if d > !ne_max then ne_max := d
        end);
    if !ne_max = min_int then None
    else
      (* A diameter-0 OPT only happens for n = 1, where the unique
         profile is also the unique equilibrium; report 1/1. *)
      if !opt = 0 then Some { anarchy = { num = 1; den = 1 }; stability = { num = 1; den = 1 } }
      else
        Some
          {
            anarchy = { num = !ne_max; den = !opt };
            stability = { num = !ne_min; den = !opt };
          }
  end

let exact_welfare_prices ?(max_profiles = 200_000) game =
  let budgets = Game.budgets game in
  if Equilibrium.count_profiles budgets > max_profiles then None
  else begin
    let opt = ref max_int in
    let ne_min = ref max_int and ne_max = ref min_int in
    Equilibrium.iter_profiles budgets (fun p ->
        let w = Game.social_welfare game p in
        if w < !opt then opt := w;
        if Equilibrium.is_nash game p then begin
          if w < !ne_min then ne_min := w;
          if w > !ne_max then ne_max := w
        end);
    if !ne_max = min_int || !opt <= 0 then None
    else
      Some
        {
          anarchy = { num = !ne_max; den = !opt };
          stability = { num = !ne_min; den = !opt };
        }
  end

let anarchy_lower_bound ~equilibrium_diameter budgets =
  let _, hi = opt_diameter_bounds budgets in
  { num = equilibrium_diameter; den = hi }
