module Digraph = Bbng_graph.Digraph
module Undirected = Bbng_graph.Undirected

type t = {
  budgets : Budget.t;
  strategies : int array array;
}

let validate_strategy n player budget targets =
  if Array.length targets <> budget then
    invalid_arg
      (Printf.sprintf "Strategy: player %d plays %d targets, budget is %d"
         player (Array.length targets) budget);
  let sorted = Array.copy targets in
  Array.sort compare sorted;
  Array.iteri
    (fun k v ->
      if v < 0 || v >= n then
        invalid_arg (Printf.sprintf "Strategy: player %d targets %d (out of range)" player v);
      if v = player then
        invalid_arg (Printf.sprintf "Strategy: player %d targets itself" player);
      if k > 0 && sorted.(k - 1) = v then
        invalid_arg (Printf.sprintf "Strategy: player %d targets %d twice" player v))
    sorted;
  sorted

let make budgets s =
  let n = Budget.n budgets in
  if Array.length s <> n then
    invalid_arg "Strategy.make: profile length differs from player count";
  let strategies =
    Array.mapi (fun i targets -> validate_strategy n i (Budget.get budgets i) targets) s
  in
  { budgets; strategies }

let n p = Budget.n p.budgets
let budgets p = p.budgets
let strategy p i = p.strategies.(i)

let realize p = Digraph.of_out_neighbors p.strategies
let underlying p = Undirected.of_digraph (realize p)

let with_strategy p ~player ~targets =
  let np = n p in
  if player < 0 || player >= np then invalid_arg "Strategy.with_strategy: bad player";
  let cleaned = validate_strategy np player (Budget.get p.budgets player) targets in
  let strategies = Array.copy p.strategies in
  strategies.(player) <- cleaned;
  { budgets = p.budgets; strategies }

(* No [validate_strategy] pass here, deliberately: the [Digraph]
   invariant (normalize_targets at every constructor) already
   guarantees each out-neighbor array is sorted, duplicate-free, in
   range and self-loop-free — exactly what validation would re-check.
   Every other constructor ([make], [with_strategy], [of_string]) takes
   unvalidated arrays and must go through [validate_strategy]. *)
let of_digraph g =
  {
    budgets = Budget.of_digraph g;
    strategies = Array.init (Digraph.n g) (fun u -> Array.copy (Digraph.out_neighbors g u));
  }

(* Uniform random b-subset of {0..n-1} \ {player} by partial
   Fisher-Yates over an index trick: sample from n-1 candidates. *)
let random_subset rng n player b =
  let candidates = Array.init (n - 1) (fun i -> if i < player then i else i + 1) in
  for k = 0 to b - 1 do
    let j = k + Random.State.int rng (Array.length candidates - k) in
    let tmp = candidates.(k) in
    candidates.(k) <- candidates.(j);
    candidates.(j) <- tmp
  done;
  Array.sub candidates 0 b

let random rng budgets =
  let np = Budget.n budgets in
  {
    budgets;
    strategies =
      Array.init np (fun i ->
          let s = random_subset rng np i (Budget.get budgets i) in
          Array.sort compare s;
          s);
  }

let relabel p pi =
  let np = n p in
  if Array.length pi <> np then invalid_arg "Strategy.relabel: wrong length";
  let seen = Array.make np false in
  Array.iter
    (fun v ->
      if v < 0 || v >= np || seen.(v) then
        invalid_arg "Strategy.relabel: not a permutation";
      seen.(v) <- true)
    pi;
  let strategies = Array.make np [||] in
  Array.iteri
    (fun i s ->
      let s' = Array.map (fun v -> pi.(v)) s in
      Array.sort compare s';
      strategies.(pi.(i)) <- s')
    p.strategies;
  let budgets = Budget.of_array (Array.map Array.length strategies) in
  { budgets; strategies }

let equal p1 p2 = p1.strategies = p2.strategies
let hash p = Hashtbl.hash p.strategies

let pp ppf p =
  Format.fprintf ppf "[";
  Array.iteri
    (fun i s ->
      if i > 0 then Format.fprintf ppf "; ";
      Format.fprintf ppf "%d->{%a}" i
        (Format.pp_print_array
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_int)
        s)
    p.strategies;
  Format.fprintf ppf "]"

let to_string p =
  String.concat ";"
    (Array.to_list
       (Array.map
          (fun s -> String.concat "," (Array.to_list (Array.map string_of_int s)))
          p.strategies))

let of_string str =
  let fields = String.split_on_char ';' str in
  let strategies =
    List.map
      (fun f ->
        if f = "" then [||]
        else
          Array.of_list
            (List.map
               (fun tok ->
                 match int_of_string_opt (String.trim tok) with
                 | Some v -> v
                 | None -> invalid_arg ("Strategy.of_string: bad token " ^ tok))
               (String.split_on_char ',' f)))
      fields
  in
  let strategies = Array.of_list strategies in
  let budgets = Budget.of_array (Array.map Array.length strategies) in
  make budgets strategies
