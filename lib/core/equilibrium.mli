(** Nash equilibrium certification.

    A profile is a (pure) Nash equilibrium iff every player is playing a
    best response.  Certification is exact (exponential in budgets,
    with the Lemma 2.2 and cost-floor short-circuits) and returns a
    {e witness} on failure so tests and experiments can show the
    profitable deviation instead of a bare [false].

    Swap stability (no single-arc replacement helps any player) is the
    weaker, polynomial notion of Alon et al.; every Nash equilibrium is
    swap stable, and several of the paper's arguments only use swap
    deviations. *)

type refutation = {
  player : int;
  better : Best_response.move;  (** a strictly improving deviation *)
  current_cost : int;
}

type verdict =
  | Equilibrium
  | Refuted of refutation

val certify : Game.t -> Strategy.t -> verdict
(** Exact Nash check.  Players are scanned in increasing order and the
    first refutation is returned. *)

val is_nash : Game.t -> Strategy.t -> bool

val certify_parallel : ?domains:int -> Game.t -> Strategy.t -> verdict
(** Like {!certify}, with the per-player best-response checks fanned
    out over OCaml 5 domains (see {!Parallel}).  When refuted, the
    returned witness may belong to any deviating player (whichever
    domain finished first), not necessarily the smallest index. *)

val is_nash_parallel : ?domains:int -> Game.t -> Strategy.t -> bool

val certify_swap : Game.t -> Strategy.t -> verdict
(** Swap-stability check (polynomial). *)

val is_swap_stable : Game.t -> Strategy.t -> bool

val digraph_is_nash : Cost.version -> Bbng_graph.Digraph.t -> bool
(** Convenience: reads the profile and budgets off a realization.  This
    is how the paper's constructions are certified (their budgets are
    defined by their arcs). *)

val pp_verdict : Format.formatter -> verdict -> unit

(** {1 Exhaustive enumeration (small instances)} *)

val iter_profiles : Budget.t -> (Strategy.t -> unit) -> unit
(** Every strategy profile of the instance, lexicographically.  The
    count is [prod_i C(n-1, b_i)]: practical for [n <= 6]-ish. *)

val count_profiles : Budget.t -> int
(** [prod_i C(n-1, b_i)], saturating at [max_int]. *)

val enumerate_equilibria : ?limit:int -> Game.t -> Strategy.t list
(** All Nash equilibria of a small instance, in enumeration order,
    stopping after [limit] (default: no limit).  Used to compute exact
    max/min equilibrium diameters (hence exact PoA/PoS) on small
    instances. *)

val equilibrium_diameter_range : Game.t -> (int * int) option
(** [(min, max)] diameter over {e all} equilibria of a small instance
    ([None] if the game has no pure equilibrium — the paper proves one
    always exists, so [None] signals a bug or a too-large instance). *)
