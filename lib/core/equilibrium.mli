(** Nash equilibrium certification.

    A profile is a (pure) Nash equilibrium iff every player is playing a
    best response.  Certification is exact (exponential in budgets,
    with the Lemma 2.2 and cost-floor short-circuits) and returns a
    {e witness} on failure so tests and experiments can show the
    profitable deviation instead of a bare [false].

    Swap stability (no single-arc replacement helps any player) is the
    weaker, polynomial notion of Alon et al.; every Nash equilibrium is
    swap stable, and several of the paper's arguments only use swap
    deviations. *)

type refutation = {
  player : int;
  better : Best_response.move;  (** a strictly improving deviation *)
  current_cost : int;
}

type verdict =
  | Equilibrium
  | Refuted of refutation
  | Degraded of int list
      (** certificate-only outcome: no improving deviation was found,
          but the listed players' scans were interrupted by an expired
          {!Bbng_obs.Budgeted.t} token, so "equilibrium" is not proven.
          The plain certifiers ({!certify} and friends) never return
          this — it arises only from {!certificate_verdict} on a
          deadline-degraded certificate. *)

val certify : Game.t -> Strategy.t -> verdict
(** Exact Nash check.  Players are scanned in increasing order and the
    first refutation is returned. *)

val is_nash : Game.t -> Strategy.t -> bool

val certify_parallel : ?domains:int -> Game.t -> Strategy.t -> verdict
(** Like {!certify}, with the per-player best-response checks fanned
    out over OCaml 5 domains (see {!Parallel}).  When refuted, the
    returned witness may belong to any deviating player (whichever
    domain finished first), not necessarily the smallest index. *)

val is_nash_parallel : ?domains:int -> Game.t -> Strategy.t -> bool

val certify_swap : Game.t -> Strategy.t -> verdict
(** Swap-stability check (polynomial). *)

val is_swap_stable : Game.t -> Strategy.t -> bool

val digraph_is_nash : Cost.version -> Bbng_graph.Digraph.t -> bool
(** Convenience: reads the profile and budgets off a realization.  This
    is how the paper's constructions are certified (their budgets are
    defined by their arcs). *)

val pp_verdict : Format.formatter -> verdict -> unit

(** {1 Certificates: auditable on-disk evidence}

    A certificate is the audit trail of one certification: per player,
    which tier decided (exact scan / Lemma 2.2 / cost floor / swap
    scan), how many candidates were evaluated, and the best deviation
    found.  It is serialized through {!Bbng_obs.Certificate} to a
    single-line JSON artifact, and {!verify_certificate} re-checks it
    {e independently} — game rebuilt from the recorded budgets and
    arcs, every recorded deviation re-priced through the {e other}
    pricing engine (evidence records which of the two exact engines
    produced it: overlay-BFS evidence re-prices through the
    distance-row engine, rows evidence through the generic evaluator),
    pruning tiers re-derived, candidate-space sizes re-counted with
    explicit overflow handling, and a seeded sample of non-recorded
    candidates re-scanned — so "this profile passed NE(exact)" becomes
    a checkable file instead of an ephemeral boolean. *)

type mode = Exact_mode | Swap_mode

val mode_name : mode -> string
val mode_of_name : string -> mode option

type certificate = {
  cert_version : Cost.version;
  cert_mode : mode;
  cert_profile : Strategy.t;
  cert_evidence : (int * Best_response.audit) list;
      (** players in increasing order; a refutation, if any, is the
          last entry *)
}

val certify_cert :
  ?budget:Bbng_obs.Budgeted.t ->
  ?engine:Deviation_eval.choice ->
  Game.t -> Strategy.t -> certificate
(** Certificate-producing {!certify}: same scan order, same pruning,
    same verdict, plus evidence.  [?engine] picks the pricing engine
    (default: the process-wide choice); the evidence records the engine
    each audit resolved to.

    [?budget] (default unlimited) bounds the work: once the token
    trips, each remaining player still gets the cheap tiers
    (cost-floor, Lemma 2.2) but any player needing the exponential scan
    degrades to a [Degraded_scan] audit instead of raising.  The
    resulting certificate carries verdict {!Degraded} (with the
    unresolved players), is stamped with a [degraded] provenance field
    on disk, and still passes {!verify_certificate} — which re-checks
    exactly the weaker claim it makes.  Never raises
    [Budgeted.Expired]. *)

val certify_swap_cert :
  ?budget:Bbng_obs.Budgeted.t ->
  ?engine:Deviation_eval.choice ->
  Game.t -> Strategy.t -> certificate
(** Certificate-producing {!certify_swap}.  [?budget] and [?engine] as
    in {!certify_cert}. *)

val certify_parallel_cert :
  ?domains:int ->
  ?budget:Bbng_obs.Budgeted.t ->
  ?engine:Deviation_eval.choice ->
  Game.t ->
  Strategy.t ->
  certificate
(** Certificate-producing {!certify_parallel}.  Unlike
    [certify_parallel], the result is deterministic: every player's
    audit is computed and the evidence is truncated at the
    lowest-index refutation, so the certificate equals the sequential
    one.  Each domain builds its own evaluation context, so the
    distance-row engine's caches are never shared across domains. *)

val certificate_verdict : certificate -> verdict

val certificate_kind : string
(** ["bbng.equilibrium-certificate"] — the artifact [kind]. *)

val certificate_to_artifact : certificate -> Bbng_obs.Certificate.t

val certificate_of_artifact :
  Bbng_obs.Certificate.t -> (certificate, string) result
(** Structural validation: header fields present, profile parses and
    matches the recorded budgets, evidence well-formed, and the
    recorded verdict agrees with the evidence.  Artifacts written
    before the [engine] / [candidates] evidence fields existed read
    back as overlay-BFS evidence with the candidate space recomputed
    from the profile; explicit but malformed values are errors. *)

val write_certificate : string -> certificate -> unit

val read_certificate : string -> (certificate, string) result

val verify_certificate : ?samples:int -> certificate -> (unit, string) result
(** Independent re-check (default [samples = 32] random non-recorded
    candidates per exhaustively-scanned player, seeded
    deterministically).  [Ok ()] means: every recorded cost re-evaluates
    to itself {e through the other engine} (see the section preamble),
    every pruning tier's condition really holds, recorded
    candidate-space sizes match an independent re-count (a complete
    scan over a [Saturated] space is rejected outright — no finite
    scan covers it), complete scans have the right candidate count,
    the recorded best never beats the current cost without a recorded
    improvement, a recorded refutation really improves, and no sampled
    candidate improves on a player certified optimal.  Any mismatch is
    an [Error] naming the player and the discrepancy.

    Degraded evidence is verified against the {e weaker} claim it
    makes: a [Degraded_scan] audit must carry no improvement, must have
    scanned strictly fewer candidates than a complete scan, and its
    recorded best must re-price correctly without improving — but gets
    no spot-check, since "no unscanned candidate improves" is exactly
    what an interrupted scan does not claim.  Both [Equilibrium] and
    [Degraded] verdicts require evidence for every player. *)

(** {1 Exhaustive enumeration (small instances)} *)

val iter_profiles : Budget.t -> (Strategy.t -> unit) -> unit
(** Every strategy profile of the instance, lexicographically.  The
    count is [prod_i C(n-1, b_i)]: practical for [n <= 6]-ish. *)

val iter_profiles_range :
  Budget.t -> lo:int -> hi:int -> (Strategy.t -> unit) -> unit
(** Profiles at lexicographic indices [[lo, hi)] of {!iter_profiles}'s
    order — the restartable slice a census shard scans.  Seeks to [lo]
    by combination unranking (no replay of predecessors), then steps
    the per-player odometer.
    @raise Invalid_argument on a saturated profile space or a range
    outside [[0, count_profiles budgets]]. *)

val count_profiles : Budget.t -> int
(** [prod_i C(n-1, b_i)], saturating at [max_int]. *)

val enumerate_equilibria : ?limit:int -> Game.t -> Strategy.t list
(** All Nash equilibria of a small instance, in enumeration order,
    stopping after [limit] (default: no limit).  Used to compute exact
    max/min equilibrium diameters (hence exact PoA/PoS) on small
    instances. *)

val equilibrium_diameter_range : Game.t -> (int * int) option
(** [(min, max)] diameter over {e all} equilibria of a small instance
    ([None] if the game has no pure equilibrium — the paper proves one
    always exists, so [None] signals a bug or a too-large instance). *)
