(** Best responses.

    Theorem 2.1 proves finding a best response NP-hard (equivalent to
    k-center in the MAX version and k-median in the SUM version), so
    this module offers the full ladder:

    - {!exact}: brute force over all [C(n-1, b)] strategies, with the
      Lemma 2.2 cost-floor short-circuit — the ground truth used by the
      equilibrium certifier and the hardness experiments;
    - {!swap_best} / {!first_improving_swap}: the polynomial single-arc
      deviations of Alon et al., used inside the paper's own proofs
      (Theorems 3.3, 4.x, 6.x) and as scalable dynamics moves;
    - {!greedy}: an incremental heuristic (build the target set one arc
      at a time), the workhorse for large dynamics workloads.

    Every search takes an optional {!Bbng_obs.Budgeted.t} cancellation
    token ([?budget], default unlimited).  Context construction and the
    cheap fallback tiers always complete regardless of the token; only
    the candidate scan honours it.  The plain finders let
    {!Bbng_obs.Budgeted.Expired} propagate (their callers own the
    degradation policy); the audited checks convert interruption into a
    typed {!Degraded_scan} audit instead.

    Every search also takes an optional [?engine] picking the pricing
    engine ({!Deviation_eval.choice}; default is the process-wide
    choice): the overlay-BFS engine or the distance-row engine.  Both
    are exact, so every result below is engine-independent; audits
    record which engine priced them so a certificate verifier can
    re-price through the other one. *)

type move = {
  targets : int array;  (** the (sorted) improving strategy *)
  cost : int;           (** the player's cost after switching *)
}

val satisfies_lemma_2_2 : Strategy.t -> int -> bool
(** Sufficient condition for "playing a best response" in {e both}
    versions (Lemma 2.2): [c_MAX(u) = 1], or [c_MAX(u) <= 2] and [u] is
    in no brace. *)

val exact :
  ?budget:Bbng_obs.Budgeted.t ->
  ?engine:Deviation_eval.choice ->
  Game.t -> Strategy.t -> int -> move
(** The true best response of a player (ties broken toward the
    lexicographically smallest target set; the player's current strategy
    wins ties only if itself lexicographically smallest).  Exponential in
    the budget.
    @raise Bbng_obs.Budgeted.Expired if the token trips mid-scan. *)

val exact_improvement :
  ?budget:Bbng_obs.Budgeted.t ->
  ?engine:Deviation_eval.choice ->
  Game.t -> Strategy.t -> int -> move option
(** [Some m] with [m.cost < current cost] if the player can improve
    (the search stops at the first strict improvement found after
    checking the Lemma 2.2 shortcut and the cost floor); [None] iff the
    player is playing a best response.
    @raise Bbng_obs.Budgeted.Expired if the token trips mid-scan. *)

val best_improvement :
  ?budget:Bbng_obs.Budgeted.t ->
  ?engine:Deviation_eval.choice ->
  Game.t -> Strategy.t -> int -> move option
(** Like {!exact_improvement} but scans everything: the {e best}
    deviation, or [None] if already optimal.
    @raise Bbng_obs.Budgeted.Expired if the token trips mid-scan. *)

val swap_best :
  ?budget:Bbng_obs.Budgeted.t ->
  ?engine:Deviation_eval.choice ->
  Game.t -> Strategy.t -> int -> move option
(** Best strict improvement obtainable by replacing exactly one owned
    arc (keeping the other [b - 1]); [None] if no swap improves.
    O(b * n) cost evaluations.
    @raise Bbng_obs.Budgeted.Expired if the token trips mid-scan. *)

val first_improving_swap :
  ?budget:Bbng_obs.Budgeted.t ->
  ?engine:Deviation_eval.choice ->
  Game.t -> Strategy.t -> int -> move option
(** First strict improvement by a single swap, scan order: owned arcs
    increasing, replacement targets increasing.
    @raise Bbng_obs.Budgeted.Expired if the token trips mid-scan. *)

(** {1 Audited checks}

    The equilibrium certifier's evidence-producing layer: the same
    pruning ladder as {!exact_improvement} / {!first_improving_swap},
    but returning {e what was checked} — which tier decided, how many
    candidates were evaluated, and the cheapest candidate seen — so a
    certificate written to disk can later be re-verified without
    re-running the search (see [Equilibrium.verify_certificate]). *)

type tier =
  | Cost_floor       (** current cost equals the Lemma 2.2 floor; no scan *)
  | Lemma_2_2_tier   (** Lemma 2.2's structural condition held; no scan *)
  | Exhaustive       (** all [C(n-1,b)] strategies were enumerated *)
  | Swap_exhaustive  (** all [b(n-1-b)] single-arc swaps were enumerated *)
  | Degraded_scan
      (** the scan was interrupted by an expired cancellation token:
          [scanned] candidates were evaluated, none improving — partial
          evidence, not a best-response proof *)

val tier_name : tier -> string
(** Stable on-disk names: ["cost-floor"], ["lemma-2.2"], ["exact"],
    ["swap"], ["degraded"]. *)

val tier_of_name : string -> tier option

type audit = {
  tier : tier;
  engine : Deviation_eval.engine;
      (** which pricing engine evaluated the candidates — recorded so a
          verifier can re-price through the other one *)
  scanned : int;          (** candidate strategies actually evaluated *)
  candidates : Bbng_graph.Combinatorics.count;
      (** size of the space the tier set out to scan ([Exact 0] for the
          no-scan tiers); [Saturated] when [C(n-1,b)] overflows, which
          is an explicit marker, never a clamped number *)
  current : int;          (** the player's cost under the profile *)
  best : move option;     (** cheapest candidate seen ([None] when pruned) *)
  improving : move option;
      (** a strictly improving candidate; [None] iff the player is
          playing a best response (under the tier's notion) *)
}

val audit_exact :
  ?budget:Bbng_obs.Budgeted.t ->
  ?engine:Deviation_eval.choice ->
  Game.t -> Strategy.t -> int -> audit
(** Audited exact check.  Prunes exactly like {!exact_improvement}
    (and agrees with it on [improving = None]); when no pruning fires
    and no improvement exists, the scan is complete — [scanned =
    C(n-1,b)] and [best.cost = current] (the current strategy is among
    the candidates).  A refutation stops at the first improvement
    found, like the plain certifier.

    Under an expired [?budget] the scan stops between candidate
    evaluations and the audit comes back with [tier = Degraded_scan],
    [scanned] = candidates actually priced, [improving = None], and
    [best] = cheapest candidate seen so far — never an exception.  The
    cheap tiers ([Cost_floor], [Lemma_2_2_tier]) still classify players
    regardless of the token, so a deadline degrades only the players
    that genuinely needed the exponential scan. *)

val audit_swap :
  ?budget:Bbng_obs.Budgeted.t ->
  ?engine:Deviation_eval.choice ->
  Game.t -> Strategy.t -> int -> audit
(** Audited swap-stability check (cost-floor pruning only; Lemma 2.2
    is about exact best responses).  Degrades under an expired
    [?budget] exactly like {!audit_exact}. *)

val greedy :
  ?budget:Bbng_obs.Budgeted.t ->
  ?engine:Deviation_eval.choice ->
  Game.t -> Strategy.t -> int -> move
(** Heuristic response: pick the [b] targets one at a time, each time
    adding the target that minimizes the player's cost with the partial
    set (a k-center/k-median-style greedy).  Not necessarily improving,
    never validated as optimal; intended as a dynamics move and as an
    initializer for local search. *)
