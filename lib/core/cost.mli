(** The paper's cost functions.

    Distances are measured in the underlying undirected graph, with
    [dist(u, v) = Cinf = n^2] when [u] and [v] are in different
    components (chosen so any strategy change that enlarges a player's
    component strictly pays off).

    - SUM version: [c_SUM(u) = sum_v dist(u, v)].
    - MAX version: [c_MAX(u) = local_diameter(u) + (kappa - 1) * n^2],
      where [kappa] is the number of connected components and the local
      diameter of any vertex of a disconnected graph is [n^2] itself.

    All arithmetic is exact 63-bit integers; the largest representable
    instance before overflow concerns would arise is n ~ 3 * 10^4 in the
    SUM version ([n * n^2 < 2^62]), far above anything the experiments
    use. *)

type version = Max | Sum

val version_name : version -> string
(** ["MAX"] / ["SUM"]. *)

val all_versions : version list

val cinf : n:int -> int
(** [n^2]. *)

(** {1 Per-vertex costs} *)

val vertex_cost : version -> Bbng_graph.Undirected.t -> int -> int
(** [vertex_cost v g u] is the paper's [c_v(u)] on the underlying graph
    [g].  Computes its own BFS and (for MAX) component count: O(n + m),
    plus O(n (n + m)) the first time components are needed — use
    {!profile_costs} to batch. *)

val vertex_cost_given : version -> n:int -> kappa:int -> dist:int array -> int
(** Cost from precomputed data: [dist] the BFS row of the vertex
    ([Bfs.unreachable] allowed), [kappa] the component count of the whole
    graph (ignored in SUM).  This is the single source of truth; the
    other entry points delegate here. *)

val profile_costs : version -> Bbng_graph.Undirected.t -> int array
(** All players' costs in one pass (one BFS per vertex, one component
    count). *)

val social_cost : Bbng_graph.Undirected.t -> int
(** Diameter of the network, with the convention of Section 1.2 that a
    disconnected network has diameter [n^2] (any realization of a
    subcritical instance "has diameter n^2"). *)

val cost_floor : version -> n:int -> budget:int -> in_degree:int -> int
(** Lemma 2.2's unconditional floor on a player's cost over {e all} its
    strategies, the other players fixed: at most [budget + in_degree]
    vertices can ever be at distance 1, so
    - MAX: 1 if [budget + in_degree >= n - 1], else 2 (0 when [n = 1]);
    - SUM: [p + 2 (n - 1 - p)] with [p = min (budget + in_degree) (n-1)].
    Used to short-circuit best-response search: reaching the floor means
    the current strategy is optimal. *)
