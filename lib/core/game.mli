(** A bounded budget network creation game instance.

    Bundles the version (MAX/SUM) and the budget vector, and provides
    the deviation-evaluation primitive everything else (best response,
    equilibrium certification, dynamics) is built from. *)

type t

val make : Cost.version -> Budget.t -> t
val version : t -> Cost.version
val budgets : t -> Budget.t
val n : t -> int

val player_cost : t -> Strategy.t -> int -> int
(** Cost of one player under a profile.  O(n + m). *)

val costs : t -> Strategy.t -> int array
(** All players' costs.  O(n (n + m)). *)

val deviation_cost : t -> Strategy.t -> player:int -> targets:int array -> int
(** Cost to [player] if it unilaterally plays [targets] (the others
    unchanged).  Does not allocate a new profile: the deviation graph is
    built directly.  O(n + m). *)

val social_cost : t -> Strategy.t -> int
(** Diameter of the realization ([n^2] when disconnected). *)

val social_welfare : t -> Strategy.t -> int
(** Sum of all players' costs — not the paper's social cost (the paper
    uses the diameter), but a useful secondary statistic for dynamics
    experiments. *)

val pp : Format.formatter -> t -> unit
