module Combinatorics = Bbng_graph.Combinatorics

let c_players = Bbng_obs.Counter.make "equilibrium.players_certified"
let c_early_exits = Bbng_obs.Counter.make "equilibrium.early_exits"

(* Every per-player best-response check in a certification funnels
   through here: one span (coarse enough for the mutex-protected span
   table, even from Parallel domains) and one counter bump. *)
let check_player finder game profile player =
  Bbng_obs.Counter.bump c_players;
  Bbng_obs.Span.time "equilibrium.certify_player" (fun () ->
      finder game profile player)

type refutation = {
  player : int;
  better : Best_response.move;
  current_cost : int;
}

type verdict = Equilibrium | Refuted of refutation

let certify_with deviation_finder game profile =
  let n = Game.n game in
  let rec scan player =
    if player >= n then Equilibrium
    else
      match check_player deviation_finder game profile player with
      | Some better ->
          if player < n - 1 then Bbng_obs.Counter.bump c_early_exits;
          Refuted { player; better; current_cost = Game.player_cost game profile player }
      | None -> scan (player + 1)
  in
  scan 0

let certify game profile = certify_with Best_response.exact_improvement game profile
let is_nash game profile = certify game profile = Equilibrium

let certify_parallel ?domains game profile =
  let n = Game.n game in
  let witness =
    Parallel.find_map ?domains ~n (fun player ->
        match check_player Best_response.exact_improvement game profile player with
        | Some better ->
            Some
              (Refuted
                 {
                   player;
                   better;
                   current_cost = Game.player_cost game profile player;
                 })
        | None -> None)
  in
  (match witness with Some _ -> Bbng_obs.Counter.bump c_early_exits | None -> ());
  match witness with Some v -> v | None -> Equilibrium

let is_nash_parallel ?domains game profile =
  let n = Game.n game in
  Parallel.for_all ?domains ~n (fun player ->
      check_player Best_response.exact_improvement game profile player = None)

let certify_swap game profile =
  certify_with Best_response.first_improving_swap game profile

let is_swap_stable game profile = certify_swap game profile = Equilibrium

let digraph_is_nash version g =
  let profile = Strategy.of_digraph g in
  is_nash (Game.make version (Strategy.budgets profile)) profile

let pp_verdict ppf = function
  | Equilibrium -> Format.fprintf ppf "equilibrium"
  | Refuted r ->
      Format.fprintf ppf
        "refuted: player %d improves %d -> %d by playing {%a}" r.player
        r.current_cost r.better.Best_response.cost
        (Format.pp_print_array
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_int)
        r.better.Best_response.targets

let iter_profiles budgets f =
  let n = Budget.n budgets in
  let strategies = Array.make n [||] in
  let unshift player c =
    Array.map (fun i -> if i < player then i else i + 1) c
  in
  let rec assign player =
    if player = n then f (Strategy.make budgets (Array.map Array.copy strategies))
    else
      Combinatorics.iter_combinations ~n:(n - 1) ~k:(Budget.get budgets player)
        (fun c ->
          strategies.(player) <- unshift player c;
          assign (player + 1))
  in
  assign 0

let count_profiles budgets =
  let n = Budget.n budgets in
  let acc = ref 1 in
  for i = 0 to n - 1 do
    let c = Combinatorics.binomial (n - 1) (Budget.get budgets i) in
    acc := if !acc > 0 && c > max_int / !acc then max_int else !acc * c
  done;
  !acc

exception Limit_reached

let enumerate_equilibria ?limit game =
  let found = ref [] in
  let count = ref 0 in
  (try
     iter_profiles (Game.budgets game) (fun profile ->
         if is_nash game profile then begin
           found := profile :: !found;
           incr count;
           match limit with
           | Some l when !count >= l -> raise Limit_reached
           | Some _ | None -> ()
         end)
   with Limit_reached -> ());
  List.rev !found

let equilibrium_diameter_range game =
  let range = ref None in
  iter_profiles (Game.budgets game) (fun profile ->
      if is_nash game profile then begin
        let d = Game.social_cost game profile in
        range :=
          match !range with
          | None -> Some (d, d)
          | Some (lo, hi) -> Some (min lo d, max hi d)
      end);
  !range
