module Combinatorics = Bbng_graph.Combinatorics
module Json = Bbng_obs.Json

let c_players = Bbng_obs.Counter.make "equilibrium.players_certified"
let c_early_exits = Bbng_obs.Counter.make "equilibrium.early_exits"
let c_certificates = Bbng_obs.Counter.make "equilibrium.certificates_produced"
let c_verified = Bbng_obs.Counter.make "equilibrium.certificates_verified"

(* Every per-player best-response check in a certification funnels
   through here: one span (coarse enough for the mutex-protected span
   table, even from Parallel domains) and one counter bump. *)
let check_player finder game profile player =
  Bbng_obs.Counter.bump c_players;
  Bbng_obs.Span.time "equilibrium.certify_player" (fun () ->
      finder game profile player)

type refutation = {
  player : int;
  better : Best_response.move;
  current_cost : int;
}

type verdict =
  | Equilibrium
  | Refuted of refutation
  | Degraded of int list

let certify_with deviation_finder game profile =
  let n = Game.n game in
  let rec scan player =
    if player >= n then Equilibrium
    else
      match check_player deviation_finder game profile player with
      | Some better ->
          if player < n - 1 then Bbng_obs.Counter.bump c_early_exits;
          Refuted { player; better; current_cost = Game.player_cost game profile player }
      | None -> scan (player + 1)
  in
  scan 0

let certify game profile = certify_with Best_response.exact_improvement game profile
let is_nash game profile = certify game profile = Equilibrium

let certify_parallel ?domains game profile =
  let n = Game.n game in
  let witness =
    Parallel.find_map ?domains ~n (fun player ->
        match check_player Best_response.exact_improvement game profile player with
        | Some better ->
            Some
              (Refuted
                 {
                   player;
                   better;
                   current_cost = Game.player_cost game profile player;
                 })
        | None -> None)
  in
  (match witness with Some _ -> Bbng_obs.Counter.bump c_early_exits | None -> ());
  match witness with Some v -> v | None -> Equilibrium

let is_nash_parallel ?domains game profile =
  let n = Game.n game in
  Parallel.for_all ?domains ~n (fun player ->
      check_player Best_response.exact_improvement game profile player = None)

let certify_swap game profile =
  certify_with Best_response.first_improving_swap game profile

let is_swap_stable game profile = certify_swap game profile = Equilibrium

let digraph_is_nash version g =
  let profile = Strategy.of_digraph g in
  is_nash (Game.make version (Strategy.budgets profile)) profile

(* --- certificates: the audited variants, serialized evidence --- *)

type mode = Exact_mode | Swap_mode

let mode_name = function Exact_mode -> "exact" | Swap_mode -> "swap"

let mode_of_name = function
  | "exact" -> Some Exact_mode
  | "swap" -> Some Swap_mode
  | _ -> None

type certificate = {
  cert_version : Cost.version;
  cert_mode : mode;
  cert_profile : Strategy.t;
  cert_evidence : (int * Best_response.audit) list;
}

let certificate_verdict cert =
  match
    List.find_opt
      (fun (_, (a : Best_response.audit)) -> a.Best_response.improving <> None)
      cert.cert_evidence
  with
  | Some (player, a) ->
      Refuted
        {
          player;
          better = Option.get a.Best_response.improving;
          current_cost = a.Best_response.current;
        }
  | None -> (
      (* no improvement found anywhere; the claim is an equilibrium
         only if every scan ran to completion *)
      match
        List.filter_map
          (fun (player, (a : Best_response.audit)) ->
            if a.Best_response.tier = Best_response.Degraded_scan then
              Some player
            else None)
          cert.cert_evidence
      with
      | [] -> Equilibrium
      | unresolved -> Degraded unresolved)

let verdict_name = function
  | Equilibrium -> "equilibrium"
  | Refuted _ -> "refuted"
  | Degraded _ -> "degraded"

let audited_player auditor game profile player =
  Bbng_obs.Counter.bump c_players;
  Bbng_obs.Span.time "equilibrium.certify_player" (fun () ->
      auditor game profile player)

(* Work-total estimate for a certification's heartbeat: the sum of the
   per-player candidate spaces, saturating — [max_int] reads as
   "unknown" in {!Bbng_obs.Progress}, so a saturated space simply
   drops total/ETA from the beats instead of faking a number.  Audits
   step by their [scanned] count, so done/total use the same unit. *)
let certify_work_total game =
  let n = Game.n game in
  let budgets = Game.budgets game in
  let acc = ref 0 in
  for p = 0 to n - 1 do
    let c = Combinatorics.binomial_sat (n - 1) (Budget.get budgets p) in
    acc := (if c = max_int || !acc > max_int - c then max_int else !acc + c)
  done;
  !acc

(* pruned tiers scan 0 candidates but still certify a player; count
   them as one unit so the heartbeat advances through lemma-covered
   prefixes too *)
let progress_audit progress (a : Best_response.audit) =
  Bbng_obs.Progress.step ~n:(max 1 a.Best_response.scanned) progress

(* game-semantic telemetry on every produced certificate: the profile's
   social cost and the max regret the evidence exhibits (the refuting
   player's improvement; an exact 0 on a certified equilibrium) land in
   gauges and in the run's ledger row, so `bbng_cli runs` can answer
   how-far-from-equilibrium questions without reopening artifacts *)
let g_social = Bbng_obs.Metrics.gauge "equilibrium.social_cost"
let g_regret = Bbng_obs.Metrics.gauge "equilibrium.max_regret"

let observe_certificate game cert =
  let social = Game.social_cost game cert.cert_profile in
  let max_regret =
    List.fold_left
      (fun acc (_, (a : Best_response.audit)) ->
        match a.Best_response.improving with
        | Some m -> max acc (a.Best_response.current - m.Best_response.cost)
        | None -> acc)
      0 cert.cert_evidence
  in
  Bbng_obs.Metrics.set_int g_social social;
  Bbng_obs.Metrics.set_int g_regret max_regret;
  let verdict = verdict_name (certificate_verdict cert) in
  Bbng_obs.Ledger.add_metric "equilibrium.social_cost" (Json.Int social);
  Bbng_obs.Ledger.add_metric "equilibrium.max_regret" (Json.Int max_regret);
  Bbng_obs.Ledger.add_metric "equilibrium.verdict" (Json.Str verdict);
  Bbng_obs.Ledger.note_outcome verdict;
  cert

let certify_cert_with ?budget auditor mode game profile =
  Bbng_obs.Span.time "equilibrium.certify" @@ fun () ->
  Bbng_obs.Counter.bump c_certificates;
  let n = Game.n game in
  observe_certificate game
  @@ Bbng_obs.Progress.with_task ?budget ~total:(certify_work_total game)
       "certify" (fun progress ->
         let rec scan player acc =
           if player >= n then List.rev acc
           else
             let a = audited_player auditor game profile player in
             progress_audit progress a;
             if a.Best_response.improving <> None then
               List.rev ((player, a) :: acc)
             else scan (player + 1) ((player, a) :: acc)
         in
         {
           cert_version = Game.version game;
           cert_mode = mode;
           cert_profile = profile;
           cert_evidence = scan 0 [];
         })

let certify_cert ?budget ?engine game profile =
  certify_cert_with ?budget
    (Best_response.audit_exact ?budget ?engine)
    Exact_mode game profile

let certify_swap_cert ?budget ?engine game profile =
  certify_cert_with ?budget
    (Best_response.audit_swap ?budget ?engine)
    Swap_mode game profile

let certify_parallel_cert ?domains ?budget ?engine game profile =
  Bbng_obs.Span.time "equilibrium.certify" @@ fun () ->
  Bbng_obs.Counter.bump c_certificates;
  let n = Game.n game in
  let audits =
    (* each audit builds its own evaluation context, so every domain
       owns its rows: nothing of the distance-row cache crosses domains.
       The progress task IS shared: every worker steps it by its scan
       count, and the ticker's CAS elects one beat emitter at a time. *)
    Bbng_obs.Progress.with_task ?budget ~total:(certify_work_total game)
      "certify" (fun progress ->
        Parallel.map ?domains ~n (fun player ->
            let a =
              audited_player
                (Best_response.audit_exact ?budget ?engine)
                game profile player
            in
            progress_audit progress a;
            a))
  in
  (* truncate after the first (lowest-player) refutation so the
     evidence shape — and the witness — matches the sequential
     certifier, which makes the parallel variant deterministic where
     [certify_parallel] is first-to-finish *)
  let rec collect player acc =
    if player >= n then List.rev acc
    else
      let a = audits.(player) in
      if a.Best_response.improving <> None then List.rev ((player, a) :: acc)
      else collect (player + 1) ((player, a) :: acc)
  in
  observe_certificate game
    {
      cert_version = Game.version game;
      cert_mode = Exact_mode;
      cert_profile = profile;
      cert_evidence = collect 0 [];
    }

(* --- certificate (de)serialization through the artifact envelope --- *)

let certificate_kind = "bbng.equilibrium-certificate"

let int_array_json a =
  Json.List (Array.to_list (Array.map (fun i -> Json.Int i) a))

let move_fields prefix (m : Best_response.move) =
  [
    (prefix ^ "_targets", int_array_json m.Best_response.targets);
    (prefix ^ "_cost", Json.Int m.Best_response.cost);
  ]

let count_to_json = function
  | Combinatorics.Exact c -> Json.Int c
  | Combinatorics.Saturated -> Json.Str "saturated"

let evidence_to_json (player, (a : Best_response.audit)) =
  Json.Obj
    ([
       ("player", Json.Int player);
       ("tier", Json.Str (Best_response.tier_name a.Best_response.tier));
       ("engine", Json.Str (Deviation_eval.engine_name a.Best_response.engine));
       ("scanned", Json.Int a.Best_response.scanned);
       ("candidates", count_to_json a.Best_response.candidates);
       ("current_cost", Json.Int a.Best_response.current);
     ]
    @ (match a.Best_response.best with
      | None -> []
      | Some m -> move_fields "best" m)
    @
    match a.Best_response.improving with
    | None -> []
    | Some m -> move_fields "improving" m)

let certificate_to_artifact cert =
  let verdict = certificate_verdict cert in
  Bbng_obs.Certificate.make ~kind:certificate_kind
    ([
       ("version", Json.Str (Cost.version_name cert.cert_version));
       ("mode", Json.Str (mode_name cert.cert_mode));
       ( "budgets",
         int_array_json (Budget.to_array (Strategy.budgets cert.cert_profile)) );
       ("profile", Json.Str (Strategy.to_string cert.cert_profile));
       ("verdict", Json.Str (verdict_name verdict));
     ]
    @ (match verdict with
      (* degraded provenance: the flag plus the unresolved players,
         explicit in the artifact so downstream tooling never mistakes
         partial evidence for an equilibrium proof *)
      | Degraded unresolved ->
          [
            ("degraded", Json.Bool true);
            ( "unresolved_players",
              Json.List (List.map (fun p -> Json.Int p) unresolved) );
          ]
      | Equilibrium | Refuted _ -> [])
    @ [ ("players", Json.List (List.map evidence_to_json cert.cert_evidence)) ])

let int_field k j =
  match Json.member k j with Some (Json.Int i) -> Some i | _ -> None

let str_field k j =
  match Json.member k j with Some (Json.Str s) -> Some s | _ -> None

let int_array_field k j =
  match Json.member k j with
  | Some (Json.List l) when List.for_all (function Json.Int _ -> true | _ -> false) l
    ->
      Some (Array.of_list (List.map (function Json.Int i -> i | _ -> 0) l))
  | _ -> None

let move_of_json prefix j =
  match (int_array_field (prefix ^ "_targets") j, int_field (prefix ^ "_cost") j)
  with
  | Some targets, Some cost -> Some { Best_response.targets; cost }
  | _ -> None

let ( let* ) = Result.bind

(* [~space] recomputes a tier's candidate-space size from the profile;
   certificates written before the engine/candidates fields existed
   fall back to it (and to the overlay engine), so old artifacts keep
   verifying.  An explicit but unknown value is a hard error, never a
   silent default. *)
let evidence_of_json ~space j =
  let engine =
    match Json.member "engine" j with
    | None -> Ok Deviation_eval.Bfs_overlay
    | Some (Json.Str s) -> (
        match Deviation_eval.engine_of_name s with
        | Some e -> Ok e
        | None -> Error (Printf.sprintf "certificate: unknown engine %S" s))
    | Some _ -> Error "certificate: malformed engine field"
  in
  let candidates player tier =
    match Json.member "candidates" j with
    | None -> Ok (space player tier)
    | Some (Json.Int c) when c >= 0 -> Ok (Combinatorics.Exact c)
    | Some (Json.Str "saturated") -> Ok Combinatorics.Saturated
    | Some _ -> Error "certificate: malformed candidates field"
  in
  match
    ( int_field "player" j,
      Option.bind (str_field "tier" j) Best_response.tier_of_name,
      int_field "scanned" j,
      int_field "current_cost" j )
  with
  | Some player, Some tier, Some scanned, Some current ->
      let* engine = engine in
      let* candidates = candidates player tier in
      Ok
        ( player,
          {
            Best_response.tier;
            engine;
            scanned;
            candidates;
            current;
            best = move_of_json "best" j;
            improving = move_of_json "improving" j;
          } )
  | _ -> Error "certificate: malformed player evidence"

let certificate_of_artifact (art : Bbng_obs.Certificate.t) =
  if art.Bbng_obs.Certificate.kind <> certificate_kind then
    Error
      (Printf.sprintf "not an equilibrium certificate (kind %S)"
         art.Bbng_obs.Certificate.kind)
  else
    let body = Json.Obj art.Bbng_obs.Certificate.body in
    let* version =
      match str_field "version" body with
      | Some "MAX" -> Ok Cost.Max
      | Some "SUM" -> Ok Cost.Sum
      | Some v -> Error (Printf.sprintf "certificate: unknown version %S" v)
      | None -> Error "certificate: missing version"
    in
    let* mode =
      match Option.bind (str_field "mode" body) mode_of_name with
      | Some m -> Ok m
      | None -> Error "certificate: missing or unknown mode"
    in
    let* budgets =
      match int_array_field "budgets" body with
      | Some b -> Ok b
      | None -> Error "certificate: missing budgets"
    in
    let* profile =
      match str_field "profile" body with
      | None -> Error "certificate: missing profile"
      | Some s -> (
          match Strategy.of_string s with
          | exception Invalid_argument msg ->
              Error (Printf.sprintf "certificate: bad profile: %s" msg)
          | p -> Ok p)
    in
    let* () =
      if Budget.to_array (Strategy.budgets profile) = budgets then Ok ()
      else Error "certificate: recorded budgets disagree with the profile"
    in
    let space player tier =
      let n = Strategy.n profile in
      let b =
        if player >= 0 && player < n then
          Budget.get (Strategy.budgets profile) player
        else 0
      in
      match (tier : Best_response.tier) with
      | Best_response.Cost_floor | Best_response.Lemma_2_2_tier ->
          Combinatorics.Exact 0
      | Best_response.Exhaustive -> Combinatorics.binomial (n - 1) b
      | Best_response.Swap_exhaustive -> Combinatorics.Exact (b * (n - 1 - b))
      | Best_response.Degraded_scan -> (
          match mode with
          | Exact_mode -> Combinatorics.binomial (n - 1) b
          | Swap_mode -> Combinatorics.Exact (b * (n - 1 - b)))
    in
    let* evidence =
      match Json.member "players" body with
      | Some (Json.List l) ->
          List.fold_left
            (fun acc j ->
              let* acc = acc in
              let* e = evidence_of_json ~space j in
              Ok (e :: acc))
            (Ok []) l
          |> Result.map List.rev
      | _ -> Error "certificate: missing players evidence"
    in
    let cert =
      {
        cert_version = version;
        cert_mode = mode;
        cert_profile = profile;
        cert_evidence = evidence;
      }
    in
    let derived_verdict = certificate_verdict cert in
    let* () =
      let recorded = str_field "verdict" body in
      let derived = verdict_name derived_verdict in
      if recorded = Some derived then Ok ()
      else
        Error
          (Printf.sprintf
             "certificate: recorded verdict %s disagrees with its evidence \
              (%s)"
             (Option.value ~default:"(missing)" recorded)
             derived)
    in
    (* the [degraded] provenance flag must agree with the evidence both
       ways: a degraded verdict without the flag, or the flag on a
       complete certificate, is a tampered/miswritten artifact *)
    let* () =
      let flagged =
        match Json.member "degraded" body with
        | Some (Json.Bool b) -> b
        | Some _ | None -> false
      in
      match (derived_verdict, flagged) with
      | Degraded _, true | (Equilibrium | Refuted _), false -> Ok ()
      | Degraded _, false ->
          Error
            "certificate: degraded evidence without the degraded provenance \
             flag"
      | (Equilibrium | Refuted _), true ->
          Error
            "certificate: degraded provenance flag on non-degraded evidence"
    in
    let* () =
      match derived_verdict with
      | Equilibrium | Refuted _ -> Ok ()
      | Degraded unresolved -> (
          match Json.member "unresolved_players" body with
          | None -> Ok () (* optional detail; the flag is the contract *)
          | Some (Json.List l)
            when List.map (fun p -> Json.Int p) unresolved = l ->
              Ok ()
          | Some _ ->
              Error
                "certificate: recorded unresolved players disagree with the \
                 evidence")
    in
    Ok cert

let write_certificate path cert =
  Bbng_obs.Certificate.write path (certificate_to_artifact cert)

let read_certificate path =
  let* art = Bbng_obs.Certificate.read path in
  certificate_of_artifact art

(* --- independent certificate verification --- *)

(* Candidate re-evaluation deliberately avoids the engine that
   produced the evidence, so a bug in one pricing path cannot both
   produce and bless a certificate: overlay-BFS evidence is re-priced
   through the distance-row engine, and rows evidence through
   [Game.deviation_cost], the generic evaluator that rebuilds the
   whole graph per candidate and shares nothing with the row cache. *)

let sample_subset rng n player b =
  let candidates = Array.init (n - 1) (fun i -> if i < player then i else i + 1) in
  for k = 0 to b - 1 do
    let j = k + Random.State.int rng (Array.length candidates - k) in
    let tmp = candidates.(k) in
    candidates.(k) <- candidates.(j);
    candidates.(j) <- tmp
  done;
  let s = Array.sub candidates 0 b in
  Array.sort compare s;
  s

let sample_swap rng owned n player =
  let drop = Random.State.int rng (Array.length owned) in
  let is_owned v = Array.exists (fun w -> w = v) owned in
  let rec fresh () =
    let v = Random.State.int rng n in
    if v = player || is_owned v then fresh () else v
  in
  let targets = Array.mapi (fun i w -> if i = drop then fresh () else w) owned in
  Array.sort compare targets;
  targets

let verify_certificate ?(samples = 32) cert =
  Bbng_obs.Counter.bump c_verified;
  let profile = cert.cert_profile in
  let budgets = Strategy.budgets profile in
  let game = Game.make cert.cert_version budgets in
  let n = Game.n game in
  let fail fmt = Printf.ksprintf (fun msg -> Error msg) fmt in
  let in_degree player =
    let count = ref 0 in
    for i = 0 to n - 1 do
      if i <> player && Array.exists (fun v -> v = player) (Strategy.strategy profile i)
      then incr count
    done;
    !count
  in
  let check_evidence (player, (a : Best_response.audit)) =
    if player < 0 || player >= n then fail "evidence for player %d of %d" player n
    else
      let budget = Budget.get budgets player in
      (* cross-engine pricing: whichever engine produced the evidence,
         re-price through the other one.  The context is lazy so pruned
         tiers (which price nothing) never pay for it. *)
      let price =
        match a.Best_response.engine with
        | Deviation_eval.Rows ->
            fun targets -> Game.deviation_cost game profile ~player ~targets
        | Deviation_eval.Bfs_overlay ->
            let ctx =
              lazy
                (Deviation_eval.make
                   ~engine:(Deviation_eval.Fixed Deviation_eval.Rows)
                   cert.cert_version profile ~player)
            in
            fun targets -> Deviation_eval.cost (Lazy.force ctx) targets
      in
      let reprice targets =
        (* validates the targets (range, budget, no self/duplicates)
           before pricing them *)
        match Strategy.with_strategy profile ~player ~targets with
        | exception Invalid_argument msg -> Error msg
        | _ -> Ok (price targets)
      in
      let check_move what (m : Best_response.move) =
        match reprice m.Best_response.targets with
        | Error msg -> fail "player %d: invalid %s targets (%s)" player what msg
        | Ok cost when cost <> m.Best_response.cost ->
            fail "player %d: recorded %s cost %d, re-evaluated %d" player what
              m.Best_response.cost cost
        | Ok _ -> Ok ()
      in
      let spot_check current make_sample count =
        let rng = Random.State.make [| 0xCE27; n; player |] in
        let rec go i =
          if i >= count then Ok ()
          else
            let targets = make_sample rng in
            match reprice targets with
            | Error msg ->
                fail "player %d: sampler produced bad targets (%s)" player msg
            | Ok cost when cost < current ->
                fail
                  "player %d: spot-check found an unrecorded improvement (cost \
                   %d < %d)"
                  player cost current
            | Ok _ -> go (i + 1)
        in
        if budget = 0 then Ok () else go 0
      in
      let check_candidates recomputed =
        if a.Best_response.candidates <> recomputed then
          fail "player %d: recorded candidate space %s, recomputed %s" player
            (Combinatorics.count_to_string a.Best_response.candidates)
            (Combinatorics.count_to_string recomputed)
        else Ok ()
      in
      let current = Game.player_cost game profile player in
      if a.Best_response.current <> current then
        fail "player %d: recorded current cost %d, re-evaluated %d" player
          a.Best_response.current current
      else
        let* () =
          match a.Best_response.improving with
          | None -> Ok ()
          | Some m ->
              let* () = check_move "improving" m in
              if m.Best_response.cost >= current then
                fail "player %d: recorded improvement does not improve (%d >= %d)"
                  player m.Best_response.cost current
              else Ok ()
        in
        match a.Best_response.tier with
        | Best_response.Cost_floor ->
            let floor =
              Cost.cost_floor cert.cert_version ~n ~budget
                ~in_degree:(in_degree player)
            in
            let* () = check_candidates (Combinatorics.Exact 0) in
            if a.Best_response.improving <> None then
              fail "player %d: cost-floor tier cannot carry an improvement" player
            else if current > floor then
              fail "player %d: cost %d is above the recomputed floor %d" player
                current floor
            else Ok ()
        | Best_response.Lemma_2_2_tier ->
            let* () = check_candidates (Combinatorics.Exact 0) in
            if cert.cert_mode <> Exact_mode then
              fail "player %d: lemma-2.2 tier in a swap certificate" player
            else if a.Best_response.improving <> None then
              fail "player %d: lemma-2.2 tier cannot carry an improvement" player
            else if not (Best_response.satisfies_lemma_2_2 profile player) then
              fail "player %d: Lemma 2.2's condition does not hold" player
            else Ok ()
        | Best_response.Exhaustive -> (
            if cert.cert_mode <> Exact_mode then
              fail "player %d: exact tier in a swap certificate" player
            else
              let expected = Combinatorics.binomial (n - 1) budget in
              let* () = check_candidates expected in
              match a.Best_response.improving with
              | Some _ -> (
                  match expected with
                  | Combinatorics.Exact e when a.Best_response.scanned > e ->
                      fail "player %d: scanned %d of %d candidates" player
                        a.Best_response.scanned e
                  | Combinatorics.Exact _ | Combinatorics.Saturated -> Ok ())
              | None -> (
                  match expected with
                  | Combinatorics.Saturated ->
                      (* a saturated space has more than max_int
                         candidates: no finite scan count can cover it,
                         so a complete-scan claim is a lie on its face *)
                      fail
                        "player %d: complete scan claimed over a saturated \
                         candidate space (more than max_int candidates)"
                        player
                  | Combinatorics.Exact e -> (
                      if a.Best_response.scanned <> e then
                        fail
                          "player %d: complete scan claimed but scanned %d of \
                           %d candidates"
                          player a.Best_response.scanned e
                      else
                        match a.Best_response.best with
                        | None ->
                            fail "player %d: complete scan without a best" player
                        | Some m ->
                            let* () = check_move "best" m in
                            if m.Best_response.cost < current then
                              fail
                                "player %d: best candidate %d beats the current \
                                 cost %d yet no improvement was recorded"
                                player m.Best_response.cost current
                            else
                              spot_check current
                                (fun rng -> sample_subset rng n player budget)
                                samples)))
        | Best_response.Swap_exhaustive -> (
            if cert.cert_mode <> Swap_mode then
              fail "player %d: swap tier in an exact certificate" player
            else
              let expected = budget * (n - 1 - budget) in
              let* () = check_candidates (Combinatorics.Exact expected) in
              match a.Best_response.improving with
              | Some _ ->
                  if a.Best_response.scanned > expected then
                    fail "player %d: scanned %d of %d swaps" player
                      a.Best_response.scanned expected
                  else Ok ()
              | None ->
                  if a.Best_response.scanned <> expected then
                    fail "player %d: complete swap scan claimed but scanned %d of %d"
                      player a.Best_response.scanned expected
                  else
                    let* () =
                      match a.Best_response.best with
                      | None when expected = 0 -> Ok ()
                      | None -> fail "player %d: complete scan without a best" player
                      | Some m ->
                          let* () = check_move "best" m in
                          if m.Best_response.cost < current then
                            fail
                              "player %d: best swap %d beats the current cost %d \
                               yet no improvement was recorded"
                              player m.Best_response.cost current
                          else Ok ()
                    in
                    if expected = 0 then Ok ()
                    else
                      spot_check current
                        (fun rng ->
                          sample_swap rng (Strategy.strategy profile player) n
                            player)
                        samples)
        | Best_response.Degraded_scan -> (
            (* partial evidence: the scan was interrupted, so the only
               checkable claims are (a) it stopped short of a complete
               scan, (b) it found no improvement, and (c) whatever
               candidate it recorded as cheapest re-prices correctly
               and does not secretly improve.  No spot-check: absence
               of improvement over unscanned candidates is exactly what
               a degraded tier does NOT claim. *)
            let expected =
              match cert.cert_mode with
              | Exact_mode -> Combinatorics.binomial (n - 1) budget
              | Swap_mode -> Combinatorics.Exact (budget * (n - 1 - budget))
            in
            let* () = check_candidates expected in
            let scan_completed =
              (* an interrupted scan of a saturated space is trivially
                 short: scanned is an int, the space is bigger than any *)
              match expected with
              | Combinatorics.Exact e -> a.Best_response.scanned >= e
              | Combinatorics.Saturated -> false
            in
            if a.Best_response.improving <> None then
              fail
                "player %d: degraded tier cannot carry an improvement (a \
                 found improvement always completes the audit as a \
                 refutation)"
                player
            else if scan_completed then
              fail
                "player %d: degraded tier claims an interrupted scan but \
                 scanned %d of %s candidates"
                player a.Best_response.scanned
                (Combinatorics.count_to_string expected)
            else
              match a.Best_response.best with
              | None -> Ok ()
              | Some m ->
                  let* () = check_move "best" m in
                  if m.Best_response.cost < current then
                    fail
                      "player %d: best candidate %d beats the current cost %d \
                       yet no improvement was recorded"
                      player m.Best_response.cost current
                  else Ok ())
  in
  (* evidence must be players 0..k in order; an equilibrium claim needs
     every player, a refutation needs clean evidence up to its witness *)
  let rec structure expected = function
    | [] ->
        if expected = n then Ok ()
        else begin
          match certificate_verdict cert with
          | Equilibrium | Degraded _ ->
              (* both claims quantify over every player — equilibrium
                 outright, degraded as "no improvement found and these
                 are the players still open" — so partial coverage
                 invalidates either *)
              fail "full coverage claimed but only players 0..%d have evidence"
                (expected - 1)
          | Refuted _ -> Ok ()
        end
    | (player, (a : Best_response.audit)) :: rest ->
        if player <> expected then
          fail "evidence out of order: expected player %d, found %d" expected
            player
        else if a.Best_response.improving <> None && rest <> [] then
          fail "player %d: refutation evidence must close the certificate" player
        else structure (expected + 1) rest
  in
  let* () = structure 0 cert.cert_evidence in
  List.fold_left
    (fun acc e ->
      let* () = acc in
      check_evidence e)
    (Ok ()) cert.cert_evidence

let pp_verdict ppf = function
  | Equilibrium -> Format.fprintf ppf "equilibrium"
  | Refuted r ->
      Format.fprintf ppf
        "refuted: player %d improves %d -> %d by playing {%a}" r.player
        r.current_cost r.better.Best_response.cost
        (Format.pp_print_array
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_int)
        r.better.Best_response.targets
  | Degraded unresolved ->
      Format.fprintf ppf
        "degraded: no improvement found, but the scan for player%s %a was \
         cut short by the deadline/work budget"
        (match unresolved with [ _ ] -> "" | _ -> "s")
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_int)
        unresolved

let iter_profiles budgets f =
  let n = Budget.n budgets in
  let strategies = Array.make n [||] in
  let unshift player c =
    Array.map (fun i -> if i < player then i else i + 1) c
  in
  let rec assign player =
    if player = n then f (Strategy.make budgets (Array.map Array.copy strategies))
    else
      Combinatorics.iter_combinations ~n:(n - 1) ~k:(Budget.get budgets player)
        (fun c ->
          strategies.(player) <- unshift player c;
          assign (player + 1))
  in
  assign 0

(* Resumable slice of the profile space: profile index [lo, hi) in the
   mixed-radix order of [iter_profiles] (player 0 is the most
   significant digit, each digit a combination rank).  A census shard
   is exactly such a pair, so restarting one needs no state beyond it. *)
let iter_profiles_range budgets ~lo ~hi f =
  let n = Budget.n budgets in
  let radices =
    Array.init n (fun i ->
        match Combinatorics.binomial (n - 1) (Budget.get budgets i) with
        | Combinatorics.Exact c -> c
        | Combinatorics.Saturated ->
            invalid_arg "Equilibrium.iter_profiles_range: saturated space")
  in
  let total =
    Array.fold_left
      (fun acc r ->
        if r = 0 || acc = 0 then 0
        else if acc > max_int / r then
          invalid_arg "Equilibrium.iter_profiles_range: saturated space"
        else acc * r)
      1 radices
  in
  if lo < 0 || hi > total || lo > hi then
    invalid_arg "Equilibrium.iter_profiles_range: bad range";
  if lo < hi then begin
    let digits = Array.make n 0 in
    let rem = ref lo in
    for i = n - 1 downto 0 do
      digits.(i) <- !rem mod radices.(i);
      rem := !rem / radices.(i)
    done;
    let combos =
      Array.init n (fun i ->
          Combinatorics.unrank_combination ~n:(n - 1)
            ~k:(Budget.get budgets i) digits.(i))
    in
    let unshift player c =
      Array.map (fun i -> if i < player then i else i + 1) c
    in
    let strategies = Array.init n (fun i -> unshift i combos.(i)) in
    let emit () =
      f (Strategy.make budgets (Array.map Array.copy strategies))
    in
    (* odometer step: advance the least significant digit that has a
       successor, reset the suffix to first combinations *)
    let rec advance i =
      if i < 0 then false
      else if Combinatorics.next_combination ~n:(n - 1) combos.(i) then begin
        strategies.(i) <- unshift i combos.(i);
        true
      end
      else begin
        let c = combos.(i) in
        Array.iteri (fun j _ -> c.(j) <- j) c;
        strategies.(i) <- unshift i c;
        advance (i - 1)
      end
    in
    emit ();
    for _ = lo + 1 to hi - 1 do
      if not (advance (n - 1)) then
        (* hi <= total: the odometer cannot run out inside the range *)
        assert false;
      emit ()
    done
  end

let count_profiles budgets =
  let n = Budget.n budgets in
  let acc = ref 1 in
  for i = 0 to n - 1 do
    let c = Combinatorics.binomial_sat (n - 1) (Budget.get budgets i) in
    acc := if !acc > 0 && c > max_int / !acc then max_int else !acc * c
  done;
  !acc

exception Limit_reached

let enumerate_equilibria ?limit game =
  let found = ref [] in
  let count = ref 0 in
  (* heartbeat over the profile space; [count_profiles] saturates to
     max_int, which Progress reads as "unknown total" *)
  Bbng_obs.Progress.with_task
    ~total:(count_profiles (Game.budgets game))
    "enumerate" (fun progress ->
      (try
         iter_profiles (Game.budgets game) (fun profile ->
             Bbng_obs.Progress.step progress;
             if is_nash game profile then begin
               found := profile :: !found;
               incr count;
               match limit with
               | Some l when !count >= l -> raise Limit_reached
               | Some _ | None -> ()
             end)
       with Limit_reached -> ());
      List.rev !found)

let equilibrium_diameter_range game =
  let range = ref None in
  Bbng_obs.Progress.with_task
    ~total:(count_profiles (Game.budgets game))
    "enumerate" (fun progress ->
      iter_profiles (Game.budgets game) (fun profile ->
          Bbng_obs.Progress.step progress;
          if is_nash game profile then begin
            let d = Game.social_cost game profile in
            range :=
              match !range with
              | None -> Some (d, d)
              | Some (lo, hi) -> Some (min lo d, max hi d)
          end);
      !range)
