type t = int array

let validate b =
  let n = Array.length b in
  if n < 1 then invalid_arg "Budget: empty budget vector";
  Array.iteri
    (fun i bi ->
      if bi < 0 || bi >= n then
        invalid_arg
          (Printf.sprintf "Budget: b_%d = %d out of range [0,%d)" i bi n))
    b;
  b

let of_array b = validate (Array.copy b)
let of_list l = validate (Array.of_list l)

let uniform ~n ~budget = validate (Array.make n budget)
let unit_budgets n = uniform ~n ~budget:1

let n b = Array.length b
let get b i = b.(i)
let to_array b = Array.copy b
let total b = Array.fold_left ( + ) 0 b
let min_budget b = Array.fold_left min b.(0) b
let max_budget b = Array.fold_left max b.(0) b

let is_tree_instance b = total b = n b - 1
let is_unit b = Array.for_all (fun bi -> bi = 1) b
let all_positive b = Array.for_all (fun bi -> bi >= 1) b
let connectable b = total b >= n b - 1

type instance_class = Subcritical | Tree | Unit | Positive | General

let classify b =
  let sigma = total b in
  if sigma < n b - 1 then Subcritical
  else if sigma = n b - 1 then Tree
  else if is_unit b then Unit
  else if all_positive b then Positive
  else General

let class_name = function
  | Subcritical -> "subcritical"
  | Tree -> "tree"
  | Unit -> "unit"
  | Positive -> "positive"
  | General -> "general"

let pp ppf b =
  Format.fprintf ppf "(%a)-BG"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    b

let random_partition rng ~n ~total =
  if n < 1 then invalid_arg "Budget.random_partition: n < 1";
  if total < 0 || total > n * (n - 1) then
    invalid_arg "Budget.random_partition: total out of range";
  let b = Array.make n 0 in
  for _ = 1 to total do
    (* Throw one unit into a uniformly random urn that still has room. *)
    let rec throw () =
      let i = Random.State.int rng n in
      if b.(i) < n - 1 then b.(i) <- b.(i) + 1 else throw ()
    in
    throw ()
  done;
  validate b

let random_powerlaw rng ~n ~exponent ~max_budget =
  if n < 1 then invalid_arg "Budget.random_powerlaw: n < 1";
  if max_budget < 0 || max_budget >= n then
    invalid_arg "Budget.random_powerlaw: need 0 <= max_budget < n";
  let weights =
    Array.init (max_budget + 1) (fun b ->
        (float_of_int (b + 1)) ** (-.exponent))
  in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let sample () =
    let x = Random.State.float rng total in
    let rec pick b acc =
      if b = max_budget then b
      else
        let acc = acc +. weights.(b) in
        if x < acc then b else pick (b + 1) acc
    in
    pick 0 0.0
  in
  validate (Array.init n (fun _ -> sample ()))

let of_digraph g =
  validate (Array.init (Bbng_graph.Digraph.n g) (Bbng_graph.Digraph.out_degree g))
