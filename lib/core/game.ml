module Digraph = Bbng_graph.Digraph
module Undirected = Bbng_graph.Undirected

let c_generic = Bbng_obs.Counter.make "deveval.generic_evals"

type t = {
  version : Cost.version;
  budgets : Budget.t;
}

let make version budgets = { version; budgets }
let version g = g.version
let budgets g = g.budgets
let n g = Budget.n g.budgets

let check_profile g p =
  if Strategy.n p <> n g then invalid_arg "Game: profile size mismatch"

let player_cost g p player =
  check_profile g p;
  Cost.vertex_cost g.version (Strategy.underlying p) player

let costs g p =
  check_profile g p;
  Cost.profile_costs g.version (Strategy.underlying p)

let deviation_cost g p ~player ~targets =
  Bbng_obs.Counter.bump c_generic;
  check_profile g p;
  if Array.length targets <> Budget.get g.budgets player then
    invalid_arg "Game.deviation_cost: deviation violates the player's budget";
  let realization = Strategy.realize p in
  let deviated = Digraph.replace_out_neighbors realization player targets in
  Cost.vertex_cost g.version (Undirected.of_digraph deviated) player

let social_cost g p =
  check_profile g p;
  Cost.social_cost (Strategy.underlying p)

let social_welfare g p = Array.fold_left ( + ) 0 (costs g p)

let pp ppf g =
  Format.fprintf ppf "%s %a" (Cost.version_name g.version) Budget.pp g.budgets
