(** Weighted weak-equilibrium machinery (Section 6).

    The proof of the SUM upper bound (Theorem 6.9) works on {e weighted}
    directed graphs: vertex weights absorb folded-away subtrees, and the
    only deviations considered are single-arc swaps ("weak equilibrium").
    This module makes those proof gadgets executable so the experiments
    can watch Lemmas 6.2-6.5 act on real equilibria:

    - a poor leaf (degree 1, out-degree 0) can be {e folded} into its
      support vertex, transferring its weight — weak equilibrium is
      preserved (the step before Corollary 6.3);
    - rich leaves (degree 1, out-degree 1) pairwise lie within distance
      2 (Lemma 6.4);
    - edges whose two endpoints both have degree 2 can be contracted,
      and a long path contains only O(log w(P)) of them (Lemma 6.5).

    Vertices keep their original indices; folded/contracted vertices are
    marked dead and become isolated. *)

type t

val of_digraph : Bbng_graph.Digraph.t -> t
(** Unit weights, everything alive. *)

val of_profile : Strategy.t -> t

val n : t -> int
(** Size of the original index space (dead vertices included). *)

val alive : t -> int list
val is_alive : t -> int -> bool
val alive_count : t -> int

val weight : t -> int -> int
(** @raise Invalid_argument on a dead vertex. *)

val total_weight : t -> int
(** Invariant under folding and contraction. *)

val underlying : t -> Bbng_graph.Undirected.t
(** Underlying undirected graph on the alive vertices (dead vertices
    present but isolated — skip them with {!is_alive}). *)

val out_neighbors : t -> int -> int list

val weighted_cost : t -> int -> int
(** [c(u) = sum_{v alive} w(v) dist(u, v)], with [dist = Cinf = n^2] for
    unreachable pairs (matching the unweighted convention). *)

(** {1 Leaves} *)

val poor_leaves : t -> int list
val rich_leaves : t -> int list

val fold_poor_leaf : t -> int -> t
(** Folds a poor leaf into its unique neighbor (weight transfers).
    @raise Invalid_argument if the vertex is not a poor leaf. *)

val fold_all_poor_leaves : t -> t * int
(** Folds until no poor leaf remains; returns the number of folds.  This
    is the subtree-folding sequence of Corollary 6.3. *)

val rich_leaves_within_2 : t -> bool
(** The Lemma 6.4 invariant: every pair of rich leaves is at distance at
    most 2 (vacuously true with fewer than two rich leaves). *)

(** {1 Degree-2 chains (Lemma 6.5)} *)

val degree2_edges : t -> (int * int) list
(** Alive edges both of whose endpoints have degree exactly 2. *)

val contract_edge : t -> int -> int -> t
(** Contracts the alive edge [(u, v)] by merging [v] into [u] (weights
    add, [v]'s other incidences move to [u], duplicates merged).
    @raise Invalid_argument if the edge is absent. *)

val contract_all_degree2 : t -> t * int
(** Repeatedly contracts degree-2-degree-2 edges until none remain;
    returns the contraction count. *)

(** {1 Weak equilibrium} *)

val is_weak_equilibrium : t -> bool
(** No alive player can strictly decrease its weighted SUM cost by
    swapping exactly one of its arcs.  O(m n) cost evaluations. *)

val pp : Format.formatter -> t -> unit
