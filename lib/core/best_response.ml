module Digraph = Bbng_graph.Digraph
module Undirected = Bbng_graph.Undirected
module Combinatorics = Bbng_graph.Combinatorics

type move = { targets : int array; cost : int }

let c_candidates = Bbng_obs.Counter.make "br.candidates"
let c_improving = Bbng_obs.Counter.make "br.improving_moves"
let c_pruned_floor = Bbng_obs.Counter.make "br.pruned_floor"
let c_pruned_lemma = Bbng_obs.Counter.make "br.pruned_lemma22"
let c_degraded = Bbng_obs.Counter.make "br.degraded_scans"

(* candidates evaluated per improvement/swap search — a pruned search
   records 0, so the distribution shows how often the floor and Lemma
   2.2 cuts fire, not just how much the surviving scans cost *)
let h_candidates = Bbng_obs.Histogram.make "br.candidates_per_search"

(* All evaluators share one incremental evaluation context: the static
   part of the graph is materialized once and each candidate strategy
   costs a single overlay BFS (see Deviation_eval). *)
type context = {
  game : Game.t;
  profile : Strategy.t;
  player : int;
  eval_ctx : Deviation_eval.t;
  budget : int;
  in_degree : int;
  floor : int;              (* Lemma 2.2 cost floor *)
  current_cost : int;
}

(* Context warm-up runs unlimited even when the caller hands us an
   already-expired token: the current cost and the floor are what the
   cheap fallback tiers (cost-floor, Lemma 2.2) compare against, and
   those must stay available under any deadline.  The caller's token is
   armed only after warm-up, so only the candidate scan can trip.

   [?engine] picks the pricing engine (default: the process-wide
   choice, see Deviation_eval.set_default_choice).  Contexts are
   per-search state, so parallel certification naturally gets one
   context — and one private row cache — per domain. *)
let make_context ?(scan_budget = Bbng_obs.Budgeted.unlimited) ?engine game
    profile player =
  let n = Game.n game in
  let budget = Budget.get (Game.budgets game) player in
  let eval_ctx = Deviation_eval.make ?engine (Game.version game) profile ~player in
  let in_degree =
    let count = ref 0 in
    for i = 0 to n - 1 do
      if i <> player && Array.exists (fun v -> v = player) (Strategy.strategy profile i)
      then incr count
    done;
    !count
  in
  let floor =
    Cost.cost_floor (Game.version game) ~n ~budget ~in_degree
  in
  let current_cost = Deviation_eval.current_cost eval_ctx in
  Deviation_eval.set_budget eval_ctx scan_budget;
  { game; profile; player; eval_ctx; budget; in_degree; floor; current_cost }

let eval ctx targets =
  Bbng_obs.Counter.bump c_candidates;
  Deviation_eval.cost ctx.eval_ctx targets

(* Subsets of {0..n-1} \ {player} are enumerated as subsets of
   {0..n-2} and shifted past the player. *)
let unshift player c =
  Array.map (fun i -> if i < player then i else i + 1) c

(* In-place variant for the scan hot loops: pricing C(n-1, b)
   candidates makes a per-candidate allocation measurable against the
   rows engine's O(b n) combine, so the shifted candidate lives in one
   reusable buffer ([Deviation_eval.cost] only reads it) and escapes by
   copy only when a candidate is actually kept. *)
let unshift_into buf player c =
  for i = 0 to Array.length c - 1 do
    let x = c.(i) in
    buf.(i) <- (if x < player then x else x + 1)
  done

(* Lemma 2.2 needs only the player's eccentricity clipped at 2 and its
   brace membership, both readable straight off the profile in
   O(n + m) — realizing the digraph and its undirected projection here
   would put two graph constructions on the certifier's per-player hot
   path.  [mark]: 1 = adjacent to the player, 2 = within distance 2. *)
let satisfies_lemma_2_2 profile player =
  let n = Strategy.n profile in
  let own = Strategy.strategy profile player in
  let targets_player i =
    Array.exists (fun w -> w = player) (Strategy.strategy profile i)
  in
  let mark = Array.make n 0 in
  mark.(player) <- 2;
  Array.iter (fun v -> mark.(v) <- 1) own;
  for i = 0 to n - 1 do
    if i <> player && targets_player i then mark.(i) <- 1
  done;
  let neighbors = ref 0 in
  for v = 0 to n - 1 do
    if mark.(v) = 1 then incr neighbors
  done;
  if !neighbors = n - 1 then true (* c_MAX(u) = 1 *)
  else if Array.exists targets_player own then false (* braced, c_MAX > 1 *)
  else begin
    (* distance-2 reach: an undirected edge into the level-1 set comes
       from an arc in either direction; level-1 marks never change in
       this pass, so one sweep settles every vertex *)
    for i = 0 to n - 1 do
      if mark.(i) = 1 then
        Array.iter
          (fun w -> if mark.(w) = 0 then mark.(w) <- 2)
          (Strategy.strategy profile i)
      else if
        mark.(i) = 0
        && Array.exists (fun w -> mark.(w) = 1) (Strategy.strategy profile i)
      then mark.(i) <- 2
    done;
    not (Array.exists (fun m -> m = 0) mark)
  end

let exact ?budget ?engine game profile player =
  let ctx = make_context ?scan_budget:budget ?engine game profile player in
  let n = Game.n game in
  let buf = Array.make ctx.budget 0 in
  match
    Combinatorics.fold_best ~n:(n - 1) ~k:ctx.budget
      ~score:(fun c ->
        unshift_into buf player c;
        eval ctx buf)
      ~stop_at:ctx.floor ()
  with
  | Some (c, cost) -> { targets = unshift player c; cost }
  | None -> assert false (* k = 0 always yields the empty subset *)

exception Found of move

let record_search_size evals =
  if Bbng_obs.Span.enabled () then Bbng_obs.Histogram.record h_candidates evals

let scan_for_improvement ctx ~stop_at_first =
  if ctx.current_cost <= ctx.floor then begin
    Bbng_obs.Counter.bump c_pruned_floor;
    record_search_size 0;
    None
  end
  else if satisfies_lemma_2_2 ctx.profile ctx.player then begin
    Bbng_obs.Counter.bump c_pruned_lemma;
    record_search_size 0;
    None
  end
  else begin
    let n = Game.n ctx.game in
    let best = ref None in
    let evals = ref 0 in
    let buf = Array.make ctx.budget 0 in
    let result =
      try
        Combinatorics.iter_combinations ~n:(n - 1) ~k:ctx.budget (fun c ->
            unshift_into buf ctx.player c;
            incr evals;
            let cost = eval ctx buf in
            if cost < ctx.current_cost then begin
              Bbng_obs.Counter.bump c_improving;
              let better_than_best =
                match !best with None -> true | Some m -> cost < m.cost
              in
              if better_than_best then begin
                let m = { targets = Array.copy buf; cost } in
                if stop_at_first || cost <= ctx.floor then raise (Found m);
                best := Some m
              end
            end);
        !best
      with Found m -> Some m
    in
    record_search_size !evals;
    result
  end

let exact_improvement ?budget ?engine game profile player =
  scan_for_improvement
    (make_context ?scan_budget:budget ?engine game profile player)
    ~stop_at_first:true

let best_improvement ?budget ?engine game profile player =
  scan_for_improvement
    (make_context ?scan_budget:budget ?engine game profile player)
    ~stop_at_first:false

let swap_candidates ctx =
  (* (kept-set, replacement) pairs: drop each owned arc in turn, try
     every replacement target not already owned and not the player. *)
  let owned = Strategy.strategy ctx.profile ctx.player in
  let n = Game.n ctx.game in
  let is_owned v = Array.exists (fun w -> w = v) owned in
  let moves = ref [] in
  Array.iteri
    (fun drop_idx _ ->
      for v = 0 to n - 1 do
        if v <> ctx.player && not (is_owned v) then begin
          let targets =
            Array.mapi (fun i w -> if i = drop_idx then v else w) owned
          in
          Array.sort compare targets;
          moves := targets :: !moves
        end
      done)
    owned;
  List.rev !moves

let swap_scan ctx ~stop_at_first =
  if ctx.current_cost <= ctx.floor then begin
    Bbng_obs.Counter.bump c_pruned_floor;
    record_search_size 0;
    None
  end
  else begin
    let best = ref None in
    let evals = ref 0 in
    let result =
      try
        List.iter
          (fun targets ->
            incr evals;
            let cost = eval ctx targets in
            if cost < ctx.current_cost then begin
              Bbng_obs.Counter.bump c_improving;
              let better = match !best with None -> true | Some m -> cost < m.cost in
              if better then begin
                let m = { targets; cost } in
                if stop_at_first then raise (Found m);
                best := Some m
              end
            end)
          (swap_candidates ctx);
        !best
      with Found m -> Some m
    in
    record_search_size !evals;
    result
  end

let swap_best ?budget ?engine game profile player =
  swap_scan
    (make_context ?scan_budget:budget ?engine game profile player)
    ~stop_at_first:false

let first_improving_swap ?budget ?engine game profile player =
  swap_scan
    (make_context ?scan_budget:budget ?engine game profile player)
    ~stop_at_first:true

(* --- audited checks: the same ladder, with evidence --- *)

type tier =
  | Cost_floor
  | Lemma_2_2_tier
  | Exhaustive
  | Swap_exhaustive
  | Degraded_scan

let tier_name = function
  | Cost_floor -> "cost-floor"
  | Lemma_2_2_tier -> "lemma-2.2"
  | Exhaustive -> "exact"
  | Swap_exhaustive -> "swap"
  | Degraded_scan -> "degraded"

let tier_of_name = function
  | "cost-floor" -> Some Cost_floor
  | "lemma-2.2" -> Some Lemma_2_2_tier
  | "exact" -> Some Exhaustive
  | "swap" -> Some Swap_exhaustive
  | "degraded" -> Some Degraded_scan
  | _ -> None

type audit = {
  tier : tier;
  engine : Deviation_eval.engine;
  scanned : int;
  candidates : Combinatorics.count;
  current : int;
  best : move option;
  improving : move option;
}

(* Shared audited scan: walk candidates tracking the global cheapest
   one (not just improving ones), stopping at the first strict
   improvement — so a no-improvement audit is a complete scan whose
   [best] witnesses "nothing beats the current strategy" (the current
   strategy itself is among the exact-tier candidates, hence
   [best.cost = current] at an equilibrium), while a refutation audit
   stops as early as the plain certifier would.  [~candidates] is the
   size of the space the tier set out to scan — it stays on the audit
   even when the scan degrades, so a verifier can compare it against
   its own re-count. *)
let audit_candidates ctx ~tier ~candidates iter_targets =
  let best = ref None in
  let improving = ref None in
  let scanned = ref 0 in
  let interrupted = ref false in
  (try
     iter_targets (fun targets ->
         incr scanned;
         let cost = eval ctx targets in
         (match !best with
         | Some (m : move) when m.cost <= cost -> ()
         | _ -> best := Some { targets; cost });
         if cost < ctx.current_cost then begin
           Bbng_obs.Counter.bump c_improving;
           improving := Some { targets; cost };
           raise Exit
         end)
   with
  | Exit -> ()
  | Bbng_obs.Budgeted.Expired ->
      (* the raising candidate was never evaluated: don't count it, and
         don't trust [best] beyond what was actually priced *)
      decr scanned;
      interrupted := true;
      Bbng_obs.Counter.bump c_degraded);
  record_search_size !scanned;
  {
    tier = (if !interrupted then Degraded_scan else tier);
    engine = Deviation_eval.engine ctx.eval_ctx;
    scanned = !scanned;
    candidates;
    current = ctx.current_cost;
    best = !best;
    (* a found improvement always escapes via Exit before any further
       eval, so an interrupted scan has [improving = None] by
       construction *)
    improving = !improving;
  }

let pruned_audit ctx tier =
  record_search_size 0;
  {
    tier;
    engine = Deviation_eval.engine ctx.eval_ctx;
    scanned = 0;
    candidates = Combinatorics.Exact 0;
    current = ctx.current_cost;
    best = None;
    improving = None;
  }

let audit_exact ?budget ?engine game profile player =
  let ctx = make_context ?scan_budget:budget ?engine game profile player in
  if ctx.current_cost <= ctx.floor then begin
    Bbng_obs.Counter.bump c_pruned_floor;
    pruned_audit ctx Cost_floor
  end
  else if satisfies_lemma_2_2 ctx.profile ctx.player then begin
    Bbng_obs.Counter.bump c_pruned_lemma;
    pruned_audit ctx Lemma_2_2_tier
  end
  else
    let n = Game.n ctx.game in
    audit_candidates ctx ~tier:Exhaustive
      ~candidates:(Combinatorics.binomial (n - 1) ctx.budget)
      (fun f ->
        Combinatorics.iter_combinations ~n:(n - 1) ~k:ctx.budget (fun c ->
            f (unshift ctx.player c)))

let audit_swap ?budget ?engine game profile player =
  let ctx = make_context ?scan_budget:budget ?engine game profile player in
  if ctx.current_cost <= ctx.floor then begin
    Bbng_obs.Counter.bump c_pruned_floor;
    pruned_audit ctx Cost_floor
  end
  else
    let n = Game.n ctx.game in
    audit_candidates ctx ~tier:Swap_exhaustive
      ~candidates:(Combinatorics.Exact (ctx.budget * (n - 1 - ctx.budget)))
      (fun f -> List.iter f (swap_candidates ctx))

let greedy ?budget ?engine game profile player =
  let ctx = make_context ?scan_budget:budget ?engine game profile player in
  let n = Game.n game in
  let chosen = ref [] in
  let is_chosen v = List.mem v !chosen in
  for _step = 1 to ctx.budget do
    let best_v = ref (-1) and best_cost = ref max_int in
    for v = 0 to n - 1 do
      if v <> player && not (is_chosen v) then begin
        (* Partial target sets are legal digraph-wise even though they
           violate the budget; cost is still well defined. *)
        let targets = Array.of_list (v :: !chosen) in
        Array.sort compare targets;
        let cost = eval ctx targets in
        if cost < !best_cost then begin
          best_cost := cost;
          best_v := v
        end
      end
    done;
    chosen := !best_v :: !chosen
  done;
  let targets = Array.of_list !chosen in
  Array.sort compare targets;
  { targets; cost = eval ctx targets }
