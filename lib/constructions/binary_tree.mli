open Bbng_core
(** The Theorem 3.4 construction: SUM tree equilibria of logarithmic
    diameter.

    The perfect binary tree on [n = 2^(depth+1) - 1] vertices, each
    internal vertex owning the arcs to its two children, is a SUM-version
    Nash equilibrium with diameter [2 * depth = Theta(log n)] — the
    matching lower bound for Theorem 3.3's [O(log n)] upper bound on SUM
    Tree-BG equilibria. *)

val profile : depth:int -> Strategy.t
(** The equilibrium profile ([depth >= 0]); vertex [i]'s children are
    [2i + 1] and [2i + 2]. *)

val budgets : depth:int -> Budget.t
(** 2 for internal vertices, 0 for leaves; sums to [n - 1]. *)

val n_of_depth : int -> int
(** [2^(depth+1) - 1]. *)

val diameter : depth:int -> int
(** [2 * depth]. *)
