open Bbng_core
(** The Theorem 3.2 / Figure 2 construction: MAX tree equilibria of
    linear diameter.

    For [n = 3k + 1], three directed paths of length [k] ([X], [Y], [Z])
    are glued at a zero-budget hub [w]; [x_1] (and [y_1], [z_1]) owns
    both its path arc and the arc to [w].  The tree is a MAX-version
    Nash equilibrium with diameter [2k = Theta(n)], which pins the MAX
    Tree-BG row of Table 1 (and the MAX "General" row's lower bound). *)

val profile : k:int -> Strategy.t
(** The equilibrium profile ([k >= 1]); vertex layout as in
    {!Bbng_graph.Generators.tripod}. *)

val budgets : k:int -> Budget.t
(** [(2, 1, ..., 1, 0) x 3 + hub 0]: leg heads have budget 2, interior
    vertices 1, leg tips and the hub 0.  Sums to [n - 1]. *)

val n_of_k : int -> int
(** [3k + 1]. *)

val diameter : k:int -> int
(** [2k], the claimed equilibrium diameter. *)

val hub : k:int -> int
(** Index of [w]. *)

(** {1 Generalized spiders}

    The Theorem 3.2 proof is stated for three legs, but nothing in the
    best-response analysis uses "three" beyond >= 3: with [legs >= 3]
    paths of length [k] glued at a zero-budget hub, each leg head still
    has no better use of its two arcs.  The test suite certifies small
    members exactly; two legs correctly fail (the graph is a path and
    the head re-centers). *)

val spider_profile : legs:int -> k:int -> Strategy.t
(** MAX equilibrium witness on [legs * k + 1] vertices, diameter [2k];
    layout as {!Bbng_graph.Generators.spider}.
    @raise Invalid_argument if [legs < 1] or [k < 1]. *)

val spider_budgets : legs:int -> k:int -> Budget.t
