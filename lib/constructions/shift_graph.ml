open Bbng_core
module Generators = Bbng_graph.Generators
module Undirected = Bbng_graph.Undirected
module Distances = Bbng_graph.Distances
module Moore = Bbng_graph.Moore

let profile ~t ~k =
  Strategy.of_digraph (Generators.shift_graph_orientation ~t ~k)

let budgets ~t ~k = Strategy.budgets (profile ~t ~k)

let paper_t ~k = 1 lsl k

let n_of ~t ~k =
  let rec go acc i = if i = 0 then acc else go (acc * t) (i - 1) in
  go 1 k

type certificate = {
  n : int;
  max_degree : int;
  all_local_diameters_equal : int option;
  counting_ok : bool;
  budgets_positive : bool;
  valid : bool;
}

let certificate ~t ~k =
  let g = Generators.shift_graph ~t ~k in
  let n = Undirected.n g in
  let max_degree = Undirected.max_degree g in
  let eccs = Array.init n (Distances.eccentricity g) in
  let all_local_diameters_equal =
    match eccs.(0) with
    | None -> None
    | Some d ->
        if Array.for_all (fun e -> e = Some d) eccs then Some d else None
  in
  let counting_ok =
    match all_local_diameters_equal with
    | None -> false
    | Some _ -> Moore.lemma_5_1_holds g
  in
  let budgets_positive = Undirected.min_degree g >= 2 in
  let valid =
    all_local_diameters_equal <> None && counting_ok && budgets_positive
  in
  { n; max_degree; all_local_diameters_equal; counting_ok; budgets_positive; valid }
