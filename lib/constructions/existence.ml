open Bbng_core
module Digraph = Bbng_graph.Digraph
module Undirected = Bbng_graph.Undirected
module Distances = Bbng_graph.Distances

type case = Case1 | Case2 | Case3

let case_name = function
  | Case1 -> "case 1 (sigma >= n-1, b_n >= z)"
  | Case2 -> "case 2 (sigma >= n-1, b_n < z)"
  | Case3 -> "case 3 (sigma < n-1)"

let zeros budgets =
  Array.fold_left
    (fun acc b -> if b = 0 then acc + 1 else acc)
    0
    (Budget.to_array budgets)

let case_of budgets =
  let n = Budget.n budgets in
  if n = 1 then Case1
  else if not (Budget.connectable budgets) then Case3
  else if Budget.max_budget budgets >= zeros budgets then Case1
  else Case2

let is_sorted b = Array.for_all (fun x -> x >= 0) b &&
  (let ok = ref true in
   for i = 1 to Array.length b - 1 do
     if b.(i) < b.(i - 1) then ok := false
   done;
   !ok)

let require_sorted budgets =
  let b = Budget.to_array budgets in
  if not (is_sorted b) then
    invalid_arg "Existence: budgets must be nondecreasing";
  b

(* Suffix sums: [suffix.(i) = b.(i) + ... + b.(n-1)], [suffix.(n) = 0]. *)
let suffix_sums b =
  let n = Array.length b in
  let s = Array.make (n + 1) 0 in
  for i = n - 1 downto 0 do
    s.(i) <- s.(i + 1) + b.(i)
  done;
  s

let case2_t budgets =
  let b = require_sorted budgets in
  let n = Array.length b in
  if case_of budgets <> Case2 then invalid_arg "Existence.case2_t: not Case 2";
  let s = suffix_sums b in
  let z = zeros budgets in
  (* Largest 1-based t with b_n + ... + b_t >= z + n - t. *)
  let rec search t0 =
    if s.(t0) >= z + n - 1 - t0 then t0 + 1 else search (t0 - 1)
  in
  search (n - 1)

let case3_m budgets =
  let b = require_sorted budgets in
  let n = Array.length b in
  if case_of budgets <> Case3 then invalid_arg "Existence.case3_m: not Case 3";
  let s = suffix_sums b in
  (* Smallest 1-based m with b_m + ... + b_n >= n - m. *)
  let rec search m0 =
    if s.(m0) >= n - m0 - 1 then m0 + 1 else search (m0 + 1)
  in
  search 0

(* Mutable construction state: out.(u) is u's target list (reverse
   insertion order), [has u v] answers arc membership in O(1). *)
type builder = {
  bn : int;
  out : int list array;
  outdeg : int array;
  matrix : Bytes.t;
}

let builder_make n =
  { bn = n; out = Array.make n []; outdeg = Array.make n 0;
    matrix = Bytes.make (n * n) '\000' }

let has bld u v = Bytes.get bld.matrix ((u * bld.bn) + v) <> '\000'

let add bld u v =
  assert (u <> v);
  assert (not (has bld u v));
  Bytes.set bld.matrix ((u * bld.bn) + v) '\001';
  bld.out.(u) <- v :: bld.out.(u);
  bld.outdeg.(u) <- bld.outdeg.(u) + 1

let remove bld u v =
  assert (has bld u v);
  Bytes.set bld.matrix ((u * bld.bn) + v) '\000';
  bld.out.(u) <- List.filter (fun w -> w <> v) bld.out.(u);
  bld.outdeg.(u) <- bld.outdeg.(u) - 1

let adjacent bld u v = has bld u v || has bld v u

let to_profile budgets bld =
  Strategy.make budgets (Array.map Array.of_list bld.out)

(* ------------------------------------------------------------------ *)
(* Case 1 *)

let build_case1 budgets b =
  let n = Array.length b in
  let bld = builder_make n in
  let hub = n - 1 in
  (* Star: the hub reaches b_n vertices, everyone else reaches the hub. *)
  for v = 0 to b.(hub) - 1 do
    add bld hub v
  done;
  for u = b.(hub) to n - 2 do
    add bld u hub
  done;
  (* Fill remaining budgets, preferring targets that create no brace. *)
  for u = 0 to n - 1 do
    while bld.outdeg.(u) < b.(u) do
      let pick pred =
        let rec scan v =
          if v >= n then None
          else if v <> u && (not (has bld u v)) && pred v then Some v
          else scan (v + 1)
        in
        scan 0
      in
      let v =
        match pick (fun v -> not (has bld v u)) with
        | Some v -> v
        | None -> (
            match pick (fun _ -> true) with
            | Some v -> v
            | None -> invalid_arg "Existence: budget exceeds available targets")
      in
      add bld u v
    done
  done;
  (* Brace repair: while some braced vertex with local diameter >= 2 has
     a non-adjacent vertex available, re-point its brace arc there.
     Every step destroys a brace and creates none, so it terminates. *)
  let underlying () =
    let arcs = ref [] in
    Array.iteri (fun u ts -> List.iter (fun v -> arcs := (u, v) :: !arcs) ts) bld.out;
    Undirected.of_edges ~n !arcs
  in
  let rec repair () =
    let g = underlying () in
    let fixable u =
      if bld.outdeg.(u) = 0 then None
      else begin
        let braced = List.filter (fun v -> has bld v u) bld.out.(u) in
        match braced with
        | [] -> None
        | v :: _ -> (
            match Distances.eccentricity g u with
            | Some e when e >= 2 ->
                let rec free w =
                  if w >= n then None
                  else if w <> u && not (adjacent bld u w) then Some (v, w)
                  else free (w + 1)
                in
                free 0
            | Some _ | None -> None)
      end
    in
    let rec scan u =
      if u >= n then ()
      else
        match fixable u with
        | Some (v, w) ->
            remove bld u v;
            add bld u w;
            repair ()
        | None -> scan (u + 1)
    in
    scan 0
  in
  repair ();
  to_profile budgets bld

(* ------------------------------------------------------------------ *)
(* Case 2: the four phases of Figure 1. *)

let build_case2 budgets b =
  let n = Array.length b in
  let z = zeros budgets in
  let s = suffix_sums b in
  let t0 = case2_t budgets - 1 in
  let bld = builder_make n in
  let vn = n - 1 in
  (* Phase 1: B and C point at v_n. *)
  for u = z to n - 2 do
    add bld u vn
  done;
  (* Phase 2: {v_n} ∪ C ∪ {v_t} cover A left to right. *)
  let next_a = ref 0 in
  let cover u count =
    for _ = 1 to count do
      add bld u !next_a;
      incr next_a
    done
  in
  cover vn b.(vn);
  for u = n - 2 downto t0 + 1 do
    cover u (b.(u) - 1)
  done;
  let spent = z + n - t0 - 2 - s.(t0 + 1) in
  cover t0 spent;
  assert (!next_a = z);
  (* Phase 3: B tops up with arcs to C ∪ {v_t}, largest index first. *)
  for u = z to t0 do
    let w = ref (n - 2) in
    while bld.outdeg.(u) < b.(u) && !w >= t0 do
      if !w <> u && not (has bld u !w) then add bld u !w;
      decr w
    done
  done;
  (* Phase 4: B tops up with arcs into A, smallest index first. *)
  for u = z to t0 do
    let v = ref 0 in
    while bld.outdeg.(u) < b.(u) do
      assert (!v < z);
      if not (has bld u !v) then add bld u !v;
      incr v
    done
  done;
  to_profile budgets bld

(* ------------------------------------------------------------------ *)
(* Case 3: isolated zeros plus a recursive suffix equilibrium. *)

let rec construct_sorted budgets =
  let b = require_sorted budgets in
  let n = Array.length b in
  if n = 1 then Strategy.make budgets [| [||] |]
  else
    match case_of budgets with
    | Case1 -> build_case1 budgets b
    | Case2 -> build_case2 budgets b
    | Case3 ->
        let m0 = case3_m budgets - 1 in
        for j = 0 to m0 - 1 do
          assert (b.(j) = 0)
        done;
        let sub_budgets = Budget.of_array (Array.sub b m0 (n - m0)) in
        let sub = construct_sorted sub_budgets in
        let strategies =
          Array.init n (fun u ->
              if u < m0 then [||]
              else Array.map (fun v -> v + m0) (Strategy.strategy sub (u - m0)))
        in
        Strategy.make budgets strategies

let construct budgets =
  let b = Budget.to_array budgets in
  let n = Array.length b in
  (* Stable sort of player indices by budget. *)
  let perm = Array.init n Fun.id in
  let tagged = Array.map (fun i -> (b.(i), i)) perm in
  Array.stable_sort compare tagged;
  let perm = Array.map snd tagged in
  let sorted = Budget.of_array (Array.map (fun i -> b.(i)) perm) in
  let sp = construct_sorted sorted in
  let strategies = Array.make n [||] in
  Array.iteri
    (fun slot player ->
      strategies.(player) <- Array.map (fun j -> perm.(j)) (Strategy.strategy sp slot))
    perm;
  Strategy.make budgets strategies

(* ------------------------------------------------------------------ *)
(* Figure 1 *)

let figure1_budgets =
  Budget.of_array (Array.init 22 (fun i -> if i < 16 then 0 else if i = 16 then 2 else 5))

let figure1_profile () =
  (* Hand transcription of Figure 1, 0-based (paper v_i = i - 1). *)
  let arcs =
    [
      (* phase 1 *)
      (16, 21); (17, 21); (18, 21); (19, 21); (20, 21);
      (* phase 2 *)
      (21, 0); (21, 1); (21, 2); (21, 3); (21, 4);
      (20, 5); (20, 6); (20, 7); (20, 8);
      (19, 9); (19, 10); (19, 11); (19, 12);
      (18, 13); (18, 14); (18, 15);
      (* phase 3 *)
      (16, 20);
      (17, 20); (17, 19); (17, 18);
      (18, 20);
      (* phase 4 *)
      (17, 0);
    ]
  in
  Strategy.of_digraph (Digraph.of_arcs ~n:22 arcs)
