open Bbng_core
(** Canonical equilibria for [(1, 1, ..., 1)]-BG (Section 4).

    Theorems 4.1/4.2 prove every unit-budget equilibrium is a short
    cycle with a shallow fringe; this module provides matching witness
    families (each certified exactly by the test suite):

    - {!concentrated_sun}: a directed triangle with all remaining
      vertices attached to one cycle vertex.  A Nash equilibrium in
      {e both} versions for every [n >= 3], diameter 2 — the Theta(1)
      row of Table 1.
    - {!balanced_sun}: fringe spread round-robin over the cycle.  A MAX
      equilibrium (for [cycle_len = 3]), but {e not} a SUM equilibrium
      once two cycle vertices carry different visible fringe: a fringe
      player strictly prefers the cycle vertex with the most attached
      fringe, which is exactly why SUM equilibria concentrate. *)

val concentrated_sun : n:int -> Strategy.t
(** Directed triangle [0 -> 1 -> 2 -> 0]; every vertex [v >= 3] owns one
    arc to vertex 0.  NE in both versions; diameter 2 for [n >= 4]
    (1 for [n = 3]).
    @raise Invalid_argument if [n < 3]. *)

val balanced_sun : cycle_len:int -> n:int -> Strategy.t
(** Directed [cycle_len]-cycle; vertex [v >= cycle_len] owns one arc to
    cycle vertex [v mod cycle_len].
    @raise Invalid_argument unless [2 <= cycle_len <= n]. *)

val brace_pair : unit -> Strategy.t
(** The unique realization for [n = 2]: the brace. *)

val diameter_upper_bound : Cost.version -> int
(** The structural bounds of Theorems 4.1/4.2 translated to diameters:
    a cycle of length at most 5 (SUM) / 7 (MAX) with fringe depth at
    most 1 (SUM) / 2 (MAX) has diameter at most 4 (SUM) / 7 (MAX). *)
