open Bbng_core
(** The Lemma 5.2 / Theorem 5.3 construction: the Braess-like paradox.

    A shift (de Bruijn-style) graph on [t^k] vertices whose {e every}
    orientation with positive out-degrees is a MAX equilibrium, of
    diameter [k].  With the paper's parameters [t = 2^k] this gives
    all-positive-budget instances with equilibrium diameter
    [sqrt(log n)] — more budget than the unit case, yet a much worse
    equilibrium: the bounded-budget analogue of Braess's paradox.

    The equilibrium property is certified two ways:
    - directly (exact best responses) for the sizes where that is
      feasible, and
    - through the Lemma 5.1/5.2 counting certificate ({!certificate}),
      which is the paper's own proof made executable and applies at any
      size. *)

val profile : t:int -> k:int -> Strategy.t
(** A positive-out-degree orientation of the [t]-ary shift graph on
    [t^k] vertices; see {!Bbng_graph.Generators.shift_graph_orientation}. *)

val budgets : t:int -> k:int -> Budget.t

val paper_t : k:int -> int
(** The paper's parameter choice [t = 2^k], so [n = t^k = 2^(k^2)] and
    the diameter [k] equals [sqrt(log2 n)].  The Lemma 5.2 hypothesis
    [(2t)^k - 1 < t^k (2t - 1)] simplifies to [2^k < 2t], which this
    choice satisfies with room to spare; any [t > 2^(k-1)] works, which
    is how the benches downsize [n] while keeping the certificate
    valid. *)

val n_of : t:int -> k:int -> int
(** [t^k]. *)

type certificate = {
  n : int;
  max_degree : int;
  all_local_diameters_equal : int option;
      (** [Some d] if every vertex has local diameter exactly [d] *)
  counting_ok : bool;
      (** the Lemma 5.1 premise [delta^d - 1 < n (delta - 1)] *)
  budgets_positive : bool;
  valid : bool;  (** conjunction: the profile is provably a MAX NE *)
}

val certificate : t:int -> k:int -> certificate
(** Checks the Lemma 5.2 hypotheses on the {e actual} built graph
    (diameters by BFS, degrees by counting): if [valid], every
    orientation — in particular {!profile} — is a MAX equilibrium. *)
