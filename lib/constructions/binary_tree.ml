open Bbng_core
let profile ~depth =
  Strategy.of_digraph (Bbng_graph.Generators.perfect_binary_tree depth)

let budgets ~depth = Strategy.budgets (profile ~depth)
let n_of_depth depth = (1 lsl (depth + 1)) - 1
let diameter ~depth = 2 * depth
