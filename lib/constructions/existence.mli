open Bbng_core
(** The Theorem 2.3 equilibrium constructions.

    For every budget vector the theorem builds a Nash equilibrium (for
    both MAX and SUM versions simultaneously), split into three cases on
    the sorted budgets [b_1 <= ... <= b_n] with [z] zeros and total
    [sigma]:

    - {b Case 1} ([sigma >= n-1], [b_n >= z]): a hub star where the
      max-budget vertex covers all zero-budget vertices; diameter <= 2
      after the initial star, braces repaired by re-pointing; final
      diameter <= 2.
    - {b Case 2} ([sigma >= n-1], [b_n < z]): the four-phase
      construction of Figure 1; diameter <= 4.
    - {b Case 3} ([sigma < n-1]): isolated zero-budget vertices plus a
      recursive equilibrium on the suffix that can afford to connect
      itself.

    All functions operating on unsorted budgets sort internally and map
    the construction back through the permutation, so [construct] is
    total over valid budget vectors. *)

type case = Case1 | Case2 | Case3

val case_of : Budget.t -> case
(** Which case applies (decided on the sorted budgets). *)

val case_name : case -> string

val construct : Budget.t -> Strategy.t
(** A Nash-equilibrium profile for the instance, in both versions.
    Certified exactly by the test suite on small instances. *)

val construct_sorted : Budget.t -> Strategy.t
(** Same, but requires the budget vector to be nondecreasing (this is
    the literal paper construction, useful when the caller wants the
    vertex roles — A, B, C, v_n — to sit at the paper's indices).
    @raise Invalid_argument if budgets are not sorted. *)

(** {1 The Figure 1 instance} *)

val figure1_budgets : Budget.t
(** [n = 22], [z = 16]: budgets [(0 x 16, 2, 5, 5, 5, 5, 5)]. *)

val figure1_profile : unit -> Strategy.t
(** The exact arc set drawn in Figure 1, hand-transcribed (independent
    of {!construct_sorted}, which the tests check against it). *)

(** {1 Case parameters (sorted budgets), exposed for tests} *)

val zeros : Budget.t -> int
(** Number of zero budgets. *)

val case2_t : Budget.t -> int
(** Case 2's threshold index [t] (1-based, as in the paper): the largest
    [t] with [b_n + ... + b_t >= z + n - t].
    @raise Invalid_argument unless sorted Case 2. *)

val case3_m : Budget.t -> int
(** Case 3's cut [m] (1-based): the smallest [m] with
    [b_m + ... + b_n >= n - m].
    @raise Invalid_argument unless sorted Case 3. *)
