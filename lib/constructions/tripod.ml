open Bbng_core
let profile ~k = Strategy.of_digraph (Bbng_graph.Generators.tripod k)
let budgets ~k = Strategy.budgets (profile ~k)
let n_of_k k = (3 * k) + 1
let diameter ~k = 2 * k
let hub ~k = 3 * k

let spider_profile ~legs ~k =
  Strategy.of_digraph (Bbng_graph.Generators.spider ~legs ~leg_len:k)

let spider_budgets ~legs ~k = Strategy.budgets (spider_profile ~legs ~k)
