open Bbng_core

let balanced_sun ~cycle_len ~n =
  if cycle_len < 2 || cycle_len > n then
    invalid_arg "Unit_budget.balanced_sun: need 2 <= cycle_len <= n";
  let arcs = ref [] in
  for i = 0 to cycle_len - 1 do
    arcs := (i, (i + 1) mod cycle_len) :: !arcs
  done;
  for v = cycle_len to n - 1 do
    arcs := (v, v mod cycle_len) :: !arcs
  done;
  Strategy.of_digraph (Bbng_graph.Digraph.of_arcs ~n !arcs)

let concentrated_sun ~n =
  if n < 3 then invalid_arg "Unit_budget.concentrated_sun: n < 3";
  let arcs = ref [ (0, 1); (1, 2); (2, 0) ] in
  for v = 3 to n - 1 do
    arcs := (v, 0) :: !arcs
  done;
  Strategy.of_digraph (Bbng_graph.Digraph.of_arcs ~n !arcs)

let brace_pair () = balanced_sun ~cycle_len:2 ~n:2

let diameter_upper_bound = function
  | Cost.Sum -> 4 (* cycle <= 5, fringe depth <= 1: 1 + floor(5/2) + 1 *)
  | Cost.Max -> 7 (* cycle <= 7, fringe depth <= 2: 2 + floor(7/2) + 2 *)
